// Tests for the observability layer (src/obs): trace buffers, the merge
// contract, the metrics registry, the exporters, and — differentially — the
// byte-identity of traces and metrics across engines and shard counts. The
// determinism contract under test (docs/OBSERVABILITY.md):
//  * a dark channel is a true no-op: macro arguments are never evaluated
//    and a sink-less run's Cluster_result serializes identically to one
//    that never heard of tracing;
//  * with a sink installed, obs::serialize_trace and the sampled metrics
//    snapshot are byte-identical between run_cluster and
//    run_cluster_sharded at shard counts {1, 2, 3, hardware};
//  * a traced reliability cell contains the span taxonomy the Perfetto
//    acceptance demo needs: per-server occupancy spans, a preemption and a
//    straggler re-queue as distinct events.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "determinism_harness.hpp"
#include "fleet/testbed.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "sim/harness.hpp"
#include "sim/shard.hpp"

namespace shog::obs {
namespace {

constexpr std::size_t kShardCounts[] = {1, 2, 3, 0}; // 0 = hardware concurrency

// ---------------------------------------------------------------- buffers

TEST(TraceBuffer, RecordsPerBufferSequence) {
    Trace_buffer buf;
    buf.record(Sim_time{1.0}, track_cloud, Trace_kind::instant, "a", 7);
    buf.record(Sim_time{0.5}, track_gpu(1), Trace_kind::span_begin, "b", 9, 2.5);
    ASSERT_EQ(buf.size(), 2u);
    EXPECT_EQ(buf.events()[0].seq, 0u);
    EXPECT_EQ(buf.events()[1].seq, 1u);
    EXPECT_EQ(buf.events()[0].id, 7u);
    EXPECT_EQ(buf.events()[1].track, track_gpu(1));
    EXPECT_DOUBLE_EQ(buf.events()[1].value, 2.5);
}

TEST(TraceChannel, DarkChannelNeverEvaluatesArguments) {
    Trace_channel dark;
    int evaluations = 0;
    const auto costly = [&evaluations] {
        ++evaluations;
        return Sim_time{1.0};
    };
    SHOG_TRACE_INSTANT(dark, costly(), track_cloud, "tick", 1);
    SHOG_TRACE_SPAN_BEGIN(dark, costly(), track_cloud, "span", 1);
    SHOG_TRACE_COUNTER(dark, costly(), track_cloud, "depth", 4.0);
    EXPECT_EQ(evaluations, 0);
    EXPECT_FALSE(static_cast<bool>(dark));

    Trace_sink sink;
    Trace_channel lit{&sink.create_buffer()};
    SHOG_TRACE_INSTANT(lit, costly(), track_cloud, "tick", 1);
    EXPECT_EQ(evaluations, 1);
    EXPECT_EQ(sink.event_count(), 1u);
}

TEST(TraceSink, MergeOrdersByTimeThenTrackThenSeq) {
    Trace_sink sink;
    Trace_buffer& device = sink.create_buffer();
    Trace_buffer& cloud = sink.create_buffer();
    device.record(Sim_time{2.0}, track_device(0), Trace_kind::instant, "late");
    device.record(Sim_time{1.0}, track_device(0), Trace_kind::instant, "mid");
    cloud.record(Sim_time{1.0}, track_cloud, Trace_kind::instant, "mid_cloud");
    cloud.record(Sim_time{0.5}, track_cloud, Trace_kind::instant, "early");

    const std::vector<Trace_event> merged = sink.merged();
    ASSERT_EQ(merged.size(), 4u);
    EXPECT_STREQ(merged[0].name, "early");
    // Simultaneous cross-track events order by track id (cloud = 0 first),
    // independent of buffer creation order.
    EXPECT_STREQ(merged[1].name, "mid_cloud");
    EXPECT_STREQ(merged[2].name, "mid");
    EXPECT_STREQ(merged[3].name, "late");
}

// ---------------------------------------------------------------- metrics

TEST(Metrics, CounterCoalescesSameTimestampDeltas) {
    Counter c;
    c.add(Sim_time{1.0});
    c.add(Sim_time{1.0}, 2);
    c.add(Sim_time{2.0});
    EXPECT_EQ(c.total(), 4u);
    ASSERT_EQ(c.points().size(), 2u);
    EXPECT_DOUBLE_EQ(c.points()[0].value, 3.0); // running total at t=1
    EXPECT_DOUBLE_EQ(c.points()[1].value, 4.0);
}

TEST(Metrics, GaugeRecordsOnChangeAndCoalesces) {
    Gauge g;
    g.set(Sim_time{1.0}, 5.0);
    g.set(Sim_time{2.0}, 5.0); // unchanged: no new point
    g.set(Sim_time{3.0}, 7.0);
    g.set(Sim_time{3.0}, 9.0); // same time: last wins, one point
    ASSERT_EQ(g.points().size(), 2u);
    EXPECT_DOUBLE_EQ(g.points()[0].value, 5.0);
    EXPECT_DOUBLE_EQ(g.points()[1].value, 9.0);
}

TEST(Metrics, HistogramFloorBucketsAndSnapshotSortsByName) {
    Metrics_registry registry;
    registry.histogram("b.occupancy").observe(2.7);
    registry.histogram("b.occupancy").observe(2.1);
    registry.histogram("b.occupancy").observe(4.0);
    registry.counter("z.last").add(Sim_time{1.0});
    registry.gauge("a.first").set(Sim_time{1.0}, 1.0);

    const Metrics_snapshot snap = registry.snapshot();
    ASSERT_EQ(snap.series.size(), 2u);
    EXPECT_EQ(snap.series[0].name, "a.first");
    EXPECT_EQ(snap.series[1].name, "z.last");
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].observations, 3u);
    ASSERT_EQ(snap.histograms[0].buckets.size(), 2u);
    EXPECT_EQ(snap.histograms[0].buckets[0].first, 2);
    EXPECT_EQ(snap.histograms[0].buckets[0].second, 2u);
    EXPECT_EQ(snap.histograms[0].buckets[1].first, 4);
}

// --------------------------------------------------------------- exporters

TEST(TraceExport, ChromeTraceJsonCarriesSpansInstantsAndMetadata) {
    Trace_sink sink;
    Trace_buffer& buf = sink.create_buffer();
    buf.record(Sim_time{1.0}, track_gpu(0), Trace_kind::span_begin, "label", 3);
    buf.record(Sim_time{2.0}, track_gpu(0), Trace_kind::span_end, "label", 3);
    buf.record(Sim_time{2.0}, track_cloud, Trace_kind::instant, "preempt", 3);
    buf.record(Sim_time{2.5}, track_device(1), Trace_kind::async_begin, "upload", 4);

    const std::string json = chrome_trace_json(sink);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"gpu 0\""), std::string::npos);
    // Sim seconds export as microseconds.
    EXPECT_NE(json.find("\"ts\":1000000"), std::string::npos);
}

TEST(TraceExport, SerializeMetricsCsvListsSeriesAndHistograms) {
    Metrics_registry registry;
    registry.counter("cloud.submits").add(Sim_time{1.5});
    registry.histogram("cloud.batch_occupancy").observe(2.0);
    const std::string csv = serialize_metrics_csv(registry.snapshot());
    EXPECT_NE(csv.find("metric,kind,key,value"), std::string::npos);
    EXPECT_NE(csv.find("cloud.submits,counter,"), std::string::npos);
    EXPECT_NE(csv.find("cloud.batch_occupancy,histogram,2,1"), std::string::npos);
}

// ------------------------------------------------- engine-level contracts

// One testbed serves every engine-level test (construction dominates).
// 60 s streams: the preemption path needs a cloud fine-tune in flight while
// labels queue behind it, which first happens around t=50 on this cell.
struct Obs_fixture : public ::testing::Test {
    static void SetUpTestSuite() {
        testbed = new fleet::Testbed{fleet::make_testbed("ua_detrac", 4, 23, 60.0)};
    }
    static void TearDownTestSuite() {
        delete testbed;
        testbed = nullptr;
    }
    static fleet::Testbed* testbed;

    /// The reliability cell every engine test traces: a 4x straggler under
    /// index-blind placement with flapping servers, a label-wait preemption
    /// bound and the straggler re-queue armed — the configuration that
    /// exercises every span kind in the taxonomy within a 30 s run.
    static fleet::Reliability_setup traced_setup() {
        fleet::Reliability_setup setup;
        setup.label = "traced";
        setup.gpu_count = 2;
        setup.placement = sim::Placement_kind::any_free;
        setup.policy = sim::Policy_kind::priority;
        setup.straggler_speed = 0.25;
        setup.mtbf = Sim_duration{12.0};
        setup.mttr = Sim_duration{3.0};
        setup.straggler_requeue_factor = 1.5;
        setup.preempt_label_wait = Sim_duration{2.0};
        return setup;
    }

    static sim::Cluster_result run_traced(std::size_t shards, Trace_sink& sink,
                                          Metrics_registry& metrics) {
        sim::Obs_options obs;
        obs.sink = &sink;
        obs.metrics = &metrics;
        return fleet::run_reliability_cell(*testbed, 4, /*heterogeneous=*/true,
                                           traced_setup(), 23, shards, obs);
    }
};

fleet::Testbed* Obs_fixture::testbed = nullptr;

TEST_F(Obs_fixture, SinklessRunMatchesTracedRunResults) {
    // Observability must not perturb the simulation: the traced run's
    // Cluster_result (metrics aside — the sink-less run has none) is
    // byte-identical to the default dark path.
    const sim::Cluster_result dark = fleet::run_reliability_cell(
        *testbed, 4, /*heterogeneous=*/true, traced_setup(), 23, /*shards=*/0);
    EXPECT_TRUE(dark.metrics.empty());

    Trace_sink sink;
    sim::Obs_options obs;
    obs.sink = &sink; // trace only; no metrics registry, so results compare 1:1
    const sim::Cluster_result traced = fleet::run_reliability_cell(
        *testbed, 4, /*heterogeneous=*/true, traced_setup(), 23, /*shards=*/0, obs);
    EXPECT_GT(sink.event_count(), 0u);
    EXPECT_EQ(shog::testing::serialize_cluster(dark),
              shog::testing::serialize_cluster(traced));
}

TEST_F(Obs_fixture, MergedTraceAndMetricsByteIdenticalAcrossShardCounts) {
    Trace_sink ref_sink;
    Metrics_registry ref_metrics;
    const sim::Cluster_result ref = run_traced(/*shards=*/0, ref_sink, ref_metrics);
    const std::string ref_trace = serialize_trace(ref_sink);
    const std::string ref_cluster = shog::testing::serialize_cluster(ref);
    ASSERT_FALSE(ref_trace.empty());
    ASSERT_NE(ref_cluster.find("metric cloud.dispatches"), std::string::npos);

    for (const std::size_t shards : kShardCounts) {
        Trace_sink sink;
        Metrics_registry metrics;
        const sim::Cluster_result r = run_traced(shards, sink, metrics);
        EXPECT_EQ(ref_trace, serialize_trace(sink)) << "shards=" << shards;
        EXPECT_EQ(ref_cluster, shog::testing::serialize_cluster(r))
            << "shards=" << shards;
    }
}

TEST_F(Obs_fixture, TracedReliabilityCellShowsFullSpanTaxonomy) {
    Trace_sink sink;
    Metrics_registry metrics;
    const sim::Cluster_result r = run_traced(/*shards=*/0, sink, metrics);
    // The events the Perfetto acceptance demo depends on.
    ASSERT_GE(r.preemptions, 1u);
    ASSERT_GE(r.straggler_requeues, 1u);
    ASSERT_GE(r.failures, 1u);

    bool occupancy_span = false;
    bool preempt_instant = false;
    bool straggler_instant = false;
    bool down_span = false;
    bool device_phase = false;
    for (const Trace_event& e : sink.merged()) {
        const std::string name = e.name;
        if (e.kind == Trace_kind::span_begin &&
            (e.track == track_gpu(0) || e.track == track_gpu(1))) {
            occupancy_span = true;
        }
        if (e.kind == Trace_kind::instant && name == "preempt") {
            preempt_instant = true;
        }
        if (e.kind == Trace_kind::instant && name == "straggler_requeue") {
            straggler_instant = true;
        }
        if (e.kind == Trace_kind::span_begin && name == "down") {
            down_span = true;
        }
        if (e.kind == Trace_kind::async_begin && name == "upload") {
            device_phase = true;
        }
    }
    EXPECT_TRUE(occupancy_span);
    EXPECT_TRUE(preempt_instant);
    EXPECT_TRUE(straggler_instant);
    EXPECT_TRUE(down_span);
    EXPECT_TRUE(device_phase);

    // The sampled counters agree with the result's own tallies.
    for (const Metric_series& s : r.metrics.series) {
        if (s.name == "cloud.preemptions") {
            ASSERT_FALSE(s.points.empty());
            EXPECT_DOUBLE_EQ(s.points.back().value, static_cast<double>(r.preemptions));
        }
        if (s.name == "cloud.straggler_requeues") {
            ASSERT_FALSE(s.points.empty());
            EXPECT_DOUBLE_EQ(s.points.back().value,
                             static_cast<double>(r.straggler_requeues));
        }
    }
}

TEST_F(Obs_fixture, EngineTracksAreOptInAndExcludedFromTheContract) {
    // engine_tracks adds shard-round diagnostics whose content depends on
    // the shard count; the flag must default off and, when on, must not
    // disturb the contract-covered tracks.
    Trace_sink plain_sink;
    Metrics_registry plain_metrics;
    (void)run_traced(/*shards=*/2, plain_sink, plain_metrics);

    Trace_sink engine_sink;
    sim::Obs_options obs;
    obs.sink = &engine_sink;
    obs.engine_tracks = true;
    (void)fleet::run_reliability_cell(*testbed, 4, /*heterogeneous=*/true, traced_setup(),
                                      23, /*shards=*/2, obs);

    std::string plain_contract;
    std::string engine_contract;
    bool saw_engine_track = false;
    for (const Trace_event& e : plain_sink.merged()) {
        plain_contract += e.name;
        plain_contract += ' ';
    }
    for (const Trace_event& e : engine_sink.merged()) {
        if (e.track >= track_engine(0)) {
            saw_engine_track = true;
            continue; // excluded from the determinism contract by design
        }
        engine_contract += e.name;
        engine_contract += ' ';
    }
    EXPECT_TRUE(saw_engine_track);
    EXPECT_EQ(plain_contract, engine_contract);
}

} // namespace
} // namespace shog::obs
