// Unit tests for the tensor substrate: shape algebra, linear algebra against
// hand-computed oracles, and parameterized consistency sweeps.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace shog {
namespace {

TEST(Tensor, DefaultEmpty) {
    Tensor t;
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.rank(), 0u);
    EXPECT_EQ(t.size(), 0u);
}

TEST(Tensor, ShapeConstruction) {
    Tensor t{3, 4};
    EXPECT_EQ(t.rank(), 2u);
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 4u);
    EXPECT_EQ(t.size(), 12u);
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(t.at(i), 0.0);
    }
}

TEST(Tensor, ZeroDimensionRejected) {
    EXPECT_THROW(Tensor(std::vector<std::size_t>{3, 0}), std::invalid_argument);
}

TEST(Tensor, FromRowsLayout) {
    const Tensor t = Tensor::from_rows({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_EQ(t.at(0, 0), 1.0);
    EXPECT_EQ(t.at(2, 1), 6.0);
    EXPECT_EQ(t.at(5), 6.0); // row-major flat access
}

TEST(Tensor, FromRowsRaggedRejected) {
    EXPECT_THROW(Tensor::from_rows({{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Tensor, FromVectorRank1) {
    const Tensor t = Tensor::from_vector({1.0, 2.0, 3.0});
    EXPECT_EQ(t.rank(), 1u);
    EXPECT_EQ(t.size(), 3u);
    EXPECT_THROW((void)t.rows(), std::invalid_argument);
}

TEST(Tensor, FullFills) {
    const Tensor t = Tensor::full({2, 2}, 7.5);
    EXPECT_EQ(t.at(1, 1), 7.5);
    EXPECT_EQ(t.sum(), 30.0);
}

TEST(Tensor, RandnIsSeeded) {
    Rng r1{5};
    Rng r2{5};
    const Tensor a = Tensor::randn({4, 4}, r1);
    const Tensor b = Tensor::randn({4, 4}, r2);
    EXPECT_EQ(max_abs_diff(a, b), 0.0);
}

TEST(Tensor, Reshape) {
    Tensor t = Tensor::from_rows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
    const Tensor r = t.reshaped({3, 2});
    EXPECT_EQ(r.at(0, 0), 1.0);
    EXPECT_EQ(r.at(2, 1), 6.0);
    EXPECT_THROW((void)t.reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, ElementwiseOps) {
    Tensor a = Tensor::from_rows({{1.0, 2.0}, {3.0, 4.0}});
    const Tensor b = Tensor::from_rows({{10.0, 20.0}, {30.0, 40.0}});
    a += b;
    EXPECT_EQ(a.at(1, 1), 44.0);
    a -= b;
    EXPECT_EQ(a.at(1, 1), 4.0);
    a *= 2.0;
    EXPECT_EQ(a.at(0, 0), 2.0);
    a *= b; // Hadamard
    EXPECT_EQ(a.at(0, 1), 80.0);
}

TEST(Tensor, ShapeMismatchThrows) {
    Tensor a{2, 2};
    Tensor b{2, 3};
    EXPECT_THROW(a += b, std::invalid_argument);
    EXPECT_THROW(a -= b, std::invalid_argument);
    EXPECT_THROW(a *= b, std::invalid_argument);
}

TEST(Tensor, AddRowVector) {
    Tensor a = Tensor::from_rows({{1.0, 2.0}, {3.0, 4.0}});
    a.add_row_vector(Tensor::from_vector({10.0, 20.0}));
    EXPECT_EQ(a.at(0, 0), 11.0);
    EXPECT_EQ(a.at(1, 1), 24.0);
    EXPECT_THROW(a.add_row_vector(Tensor::from_vector({1.0, 2.0, 3.0})),
                 std::invalid_argument);
}

TEST(Tensor, ColumnReductions) {
    const Tensor a = Tensor::from_rows({{1.0, 10.0}, {3.0, 30.0}});
    const Tensor mean = a.column_mean();
    EXPECT_EQ(mean.at(0), 2.0);
    EXPECT_EQ(mean.at(1), 20.0);
    const Tensor var = a.column_variance(mean);
    EXPECT_EQ(var.at(0), 1.0);   // population variance
    EXPECT_EQ(var.at(1), 100.0);
    const Tensor sum = a.column_sum();
    EXPECT_EQ(sum.at(0), 4.0);
    EXPECT_EQ(sum.at(1), 40.0);
}

TEST(Tensor, RowAccessAndSet) {
    Tensor a = Tensor::from_rows({{1.0, 2.0}, {3.0, 4.0}});
    const Tensor r = a.row(1);
    EXPECT_EQ(r.at(0), 3.0);
    a.set_row(0, Tensor::from_vector({9.0, 8.0}));
    EXPECT_EQ(a.at(0, 1), 8.0);
}

TEST(Tensor, SliceRows) {
    const Tensor a = Tensor::from_rows({{1.0}, {2.0}, {3.0}, {4.0}});
    const Tensor s = a.slice_rows(1, 3);
    EXPECT_EQ(s.rows(), 2u);
    EXPECT_EQ(s.at(0, 0), 2.0);
    EXPECT_EQ(s.at(1, 0), 3.0);
    EXPECT_THROW((void)a.slice_rows(2, 2), std::invalid_argument);
    EXPECT_THROW((void)a.slice_rows(3, 5), std::invalid_argument);
}

TEST(Tensor, GatherRows) {
    const Tensor a = Tensor::from_rows({{1.0}, {2.0}, {3.0}});
    const Tensor g = a.gather_rows({2, 0, 2});
    EXPECT_EQ(g.rows(), 3u);
    EXPECT_EQ(g.at(0, 0), 3.0);
    EXPECT_EQ(g.at(1, 0), 1.0);
    EXPECT_EQ(g.at(2, 0), 3.0);
    EXPECT_THROW((void)a.gather_rows({5}), std::invalid_argument);
}

TEST(Matmul, HandComputed) {
    const Tensor a = Tensor::from_rows({{1.0, 2.0}, {3.0, 4.0}});
    const Tensor b = Tensor::from_rows({{5.0, 6.0}, {7.0, 8.0}});
    const Tensor c = matmul(a, b);
    EXPECT_EQ(c.at(0, 0), 19.0);
    EXPECT_EQ(c.at(0, 1), 22.0);
    EXPECT_EQ(c.at(1, 0), 43.0);
    EXPECT_EQ(c.at(1, 1), 50.0);
}

TEST(Matmul, InnerDimChecked) {
    Tensor a{2, 3};
    Tensor b{4, 2};
    EXPECT_THROW((void)matmul(a, b), std::invalid_argument);
}

TEST(Matmul, IdentityPreserves) {
    Rng rng{3};
    const Tensor a = Tensor::randn({5, 5}, rng);
    Tensor eye{5, 5};
    for (std::size_t i = 0; i < 5; ++i) {
        eye.at(i, i) = 1.0;
    }
    EXPECT_LT(max_abs_diff(matmul(a, eye), a), 1e-12);
}

TEST(Transpose, Involution) {
    Rng rng{4};
    const Tensor a = Tensor::randn({3, 7}, rng);
    EXPECT_LT(max_abs_diff(transpose(transpose(a)), a), 1e-12);
}

struct Matmul_shape {
    std::size_t m, k, n;
};

class MatmulVariants : public ::testing::TestWithParam<Matmul_shape> {};

TEST_P(MatmulVariants, NtMatchesExplicitTranspose) {
    const auto [m, k, n] = GetParam();
    Rng rng{m * 100 + k * 10 + n};
    const Tensor a = Tensor::randn({m, k}, rng);
    const Tensor b = Tensor::randn({n, k}, rng);
    EXPECT_LT(max_abs_diff(matmul_nt(a, b), matmul(a, transpose(b))), 1e-10);
}

TEST_P(MatmulVariants, TnMatchesExplicitTranspose) {
    const auto [m, k, n] = GetParam();
    Rng rng{m * 101 + k * 11 + n};
    const Tensor a = Tensor::randn({k, m}, rng);
    const Tensor b = Tensor::randn({k, n}, rng);
    EXPECT_LT(max_abs_diff(matmul_tn(a, b), matmul(transpose(a), b)), 1e-10);
}

TEST_P(MatmulVariants, MatmulAgreesWithNaive) {
    const auto [m, k, n] = GetParam();
    Rng rng{m + k + n};
    const Tensor a = Tensor::randn({m, k}, rng);
    const Tensor b = Tensor::randn({k, n}, rng);
    const Tensor c = matmul(a, b);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::size_t p = 0; p < k; ++p) {
                acc += a.at(i, p) * b.at(p, j);
            }
            EXPECT_NEAR(c.at(i, j), acc, 1e-10);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatmulVariants,
                         ::testing::Values(Matmul_shape{1, 1, 1}, Matmul_shape{2, 3, 4},
                                           Matmul_shape{5, 1, 5}, Matmul_shape{7, 8, 3},
                                           Matmul_shape{16, 16, 16}, Matmul_shape{1, 9, 2}));

TEST(ConcatRows, StacksParts) {
    const Tensor a = Tensor::from_rows({{1.0, 2.0}});
    const Tensor b = Tensor::from_rows({{3.0, 4.0}, {5.0, 6.0}});
    const Tensor c = concat_rows({a, b});
    EXPECT_EQ(c.rows(), 3u);
    EXPECT_EQ(c.at(2, 1), 6.0);
}

TEST(ConcatRows, SliceRoundTrip) {
    Rng rng{8};
    const Tensor x = Tensor::randn({6, 3}, rng);
    const Tensor top = x.slice_rows(0, 2);
    const Tensor bottom = x.slice_rows(2, 6);
    EXPECT_LT(max_abs_diff(concat_rows({top, bottom}), x), 1e-15);
}

TEST(ConcatRows, ColumnMismatchRejected) {
    Tensor a{1, 2};
    Tensor b{1, 3};
    EXPECT_THROW((void)concat_rows({a, b}), std::invalid_argument);
}

TEST(MaxAbsDiff, Basics) {
    const Tensor a = Tensor::from_rows({{1.0, 2.0}});
    const Tensor b = Tensor::from_rows({{1.5, 1.0}});
    EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 1.0);
}

} // namespace
} // namespace shog
