// Tests for the adaptive frame-sampling controller (Eq. 2-3): exact R-term
// formulas, clamping, qualitative responses, and parameterized stability
// sweeps across gain settings.
#include <algorithm>
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/controller.hpp"

namespace shog::core {
namespace {

Controller_config static_config() {
    Controller_config cfg;
    cfg.adaptive_alpha_target = false; // exact-formula tests use the paper form
    return cfg;
}

TEST(Controller, InitialRateClamped) {
    Sampling_controller low{static_config(), 0.01};
    EXPECT_DOUBLE_EQ(low.rate(), 0.1);
    Sampling_controller high{static_config(), 10.0};
    EXPECT_DOUBLE_EQ(high.rate(), 2.0);
}

TEST(Controller, RPhiFormula) {
    Controller_config cfg = static_config();
    cfg.eta_r = 2.0;
    cfg.phi_target = 0.3;
    Sampling_controller c{cfg, 1.0};
    c.observe_phi(0.5);
    c.observe_phi(0.7);
    // phi_bar = 0.6 -> R(phi) = 2.0 * (0.6 - 0.3) = 0.6
    EXPECT_NEAR(c.r_phi(), 0.6, 1e-12);
}

TEST(Controller, RAlphaFormula) {
    Controller_config cfg = static_config();
    cfg.eta_alpha = 3.0;
    cfg.alpha_target = 0.8;
    Sampling_controller c{cfg, 1.0};
    EXPECT_NEAR(c.r_alpha(0.5), 3.0 * 0.3, 1e-12);
    EXPECT_DOUBLE_EQ(c.r_alpha(0.9), 0.0); // max(0, .) clips
}

TEST(Controller, RLambdaCarriesRate) {
    Sampling_controller c{static_config(), 1.5};
    // First update: no previous lambda -> (1 + 0) * r_t.
    EXPECT_NEAR(c.r_lambda(0.7), 1.5, 1e-12);
    (void)c.update(1.0, 0.7);
    // Now delta lambda = +0.2 against the stored 0.7.
    EXPECT_NEAR(c.r_lambda(0.9), (1.0 + 0.2) * c.rate(), 1e-12);
}

TEST(Controller, UpdateIsSumOfTermsClamped) {
    Controller_config cfg = static_config();
    cfg.eta_r = 1.0;
    cfg.eta_alpha = 1.0;
    cfg.phi_target = 0.2;
    cfg.alpha_target = 0.8;
    Sampling_controller c{cfg, 1.0};
    c.observe_phi(0.4);
    const double expected = 1.0 * (0.4 - 0.2)    // R(phi)
                            + 1.0 * (0.8 - 0.5)  // R(alpha)
                            + 1.0 * 1.0;         // R(lambda), first update
    const double rate = c.update(0.5, 0.6);
    EXPECT_NEAR(rate, std::clamp(expected, 0.1, 2.0), 1e-12);
    EXPECT_EQ(c.updates(), 1u);
}

TEST(Controller, RateRisesWhenAccuracyDrops) {
    Sampling_controller c{static_config(), 0.5};
    for (int i = 0; i < 5; ++i) {
        c.observe_phi(0.1);
        (void)c.update(0.2, 0.9); // far below alpha target
    }
    EXPECT_GT(c.rate(), 1.5);
}

TEST(Controller, RateDecaysOnStationaryAccurateVideo) {
    Sampling_controller c{static_config(), 2.0};
    for (int i = 0; i < 30; ++i) {
        c.observe_phi(0.02); // nearly static labels
        (void)c.update(0.95, 0.9);
    }
    EXPECT_NEAR(c.rate(), 0.1, 0.05); // settles at r_min
}

TEST(Controller, RateRisesOnFastChangingScene) {
    Sampling_controller c{static_config(), 0.1};
    for (int i = 0; i < 10; ++i) {
        c.observe_phi(0.9); // labels churning
        (void)c.update(0.95, 0.9);
    }
    EXPECT_GT(c.rate(), 1.0);
}

TEST(Controller, PhiWindowForgets) {
    Controller_config cfg = static_config();
    cfg.phi_horizon = 4;
    Sampling_controller c{cfg, 1.0};
    for (int i = 0; i < 10; ++i) {
        c.observe_phi(0.9);
    }
    for (int i = 0; i < 4; ++i) {
        c.observe_phi(0.1);
    }
    EXPECT_NEAR(c.phi_bar(), 0.1, 1e-12); // old spikes fully evicted
}

TEST(Controller, AdaptiveAlphaTargetTracksPeak) {
    Controller_config cfg;
    cfg.adaptive_alpha_target = true;
    cfg.alpha_target_fraction = 0.9;
    Sampling_controller c{cfg, 1.0};
    (void)c.update(0.7, 0.9);
    EXPECT_NEAR(c.effective_alpha_target(), 0.63, 1e-9);
    // A lower alpha later does not raise the target (peak memory)...
    (void)c.update(0.3, 0.9);
    EXPECT_GT(c.effective_alpha_target(), 0.6);
    // ...and a higher alpha raises it.
    (void)c.update(0.85, 0.9);
    EXPECT_NEAR(c.effective_alpha_target(), 0.9 * 0.85, 1e-6);
}

TEST(Controller, InputValidation) {
    Sampling_controller c{static_config(), 1.0};
    EXPECT_THROW(c.observe_phi(1.5), std::invalid_argument);
    EXPECT_THROW((void)c.update(1.5, 0.5), std::invalid_argument);
    EXPECT_THROW((void)c.update(0.5, -0.1), std::invalid_argument);
    Controller_config bad = static_config();
    bad.r_min = 0.0;
    EXPECT_THROW((Sampling_controller{bad, 1.0}), std::invalid_argument);
}

struct Gain_setting {
    double eta_r;
    double eta_alpha;
};

class ControllerStability : public ::testing::TestWithParam<Gain_setting> {};

TEST_P(ControllerStability, RateStaysBoundedUnderNoise) {
    const Gain_setting g = GetParam();
    Controller_config cfg = static_config();
    cfg.eta_r = g.eta_r;
    cfg.eta_alpha = g.eta_alpha;
    Sampling_controller c{cfg, 1.0};
    Rng rng{static_cast<std::uint64_t>(g.eta_r * 100 + g.eta_alpha * 10)};
    for (int i = 0; i < 300; ++i) {
        c.observe_phi(std::clamp(rng.uniform(), 0.0, 1.0));
        const double rate = c.update(rng.uniform(), rng.uniform());
        EXPECT_GE(rate, cfg.r_min);
        EXPECT_LE(rate, cfg.r_max);
        EXPECT_TRUE(std::isfinite(rate));
    }
}

INSTANTIATE_TEST_SUITE_P(GainGrid, ControllerStability,
                         ::testing::Values(Gain_setting{0.0, 0.0}, Gain_setting{0.5, 0.5},
                                           Gain_setting{1.6, 2.0}, Gain_setting{5.0, 1.0},
                                           Gain_setting{1.0, 5.0}, Gain_setting{8.0, 8.0}));

} // namespace
} // namespace shog::core
