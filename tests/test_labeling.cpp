// Tests for online labeling (Eq. 1), the phi label-change metric, and the
// detection-agreement alpha signal.
#include <gtest/gtest.h>

#include "core/labeling.hpp"
#include "models/pretrain.hpp"
#include "video/presets.hpp"

namespace shog::core {
namespace {

detect::Detection det(double x1, double y1, double x2, double y2, std::size_t cls,
                      double conf = 0.9) {
    return detect::Detection{detect::Box{x1, y1, x2, y2}, cls, conf};
}

// ----------------------------------------------------------- phi_between ---

TEST(Phi, BothEmptyIsZero) { EXPECT_DOUBLE_EQ(phi_between({}, {}), 0.0); }

TEST(Phi, OneEmptyIsMax) {
    const std::vector<detect::Detection> some{det(0, 0, 10, 10, 1)};
    EXPECT_DOUBLE_EQ(phi_between(some, {}), 1.0);
    EXPECT_DOUBLE_EQ(phi_between({}, some), 1.0);
}

TEST(Phi, IdenticalOutputsNearZero) {
    const std::vector<detect::Detection> a{det(0, 0, 10, 10, 1), det(30, 30, 50, 50, 2)};
    EXPECT_NEAR(phi_between(a, a), 0.0, 1e-12);
}

TEST(Phi, MotionInvariant) {
    // Same objects, moved: summaries unchanged -> phi stays near zero. This
    // is the property that makes phi usable at sub-fps sampling rates.
    const std::vector<detect::Detection> before{det(0, 0, 10, 10, 1), det(30, 30, 50, 50, 2)};
    const std::vector<detect::Detection> after{det(200, 0, 210, 10, 1),
                                               det(100, 100, 120, 120, 2)};
    EXPECT_NEAR(phi_between(after, before), 0.0, 1e-12);
}

TEST(Phi, ClassShiftRaises) {
    const std::vector<detect::Detection> cars{det(0, 0, 10, 10, 1), det(20, 0, 30, 10, 1)};
    const std::vector<detect::Detection> buses{det(0, 0, 10, 10, 3), det(20, 0, 30, 10, 3)};
    EXPECT_GT(phi_between(buses, cars), 0.3);
}

TEST(Phi, CountCollapseRaises) {
    std::vector<detect::Detection> many;
    for (int i = 0; i < 10; ++i) {
        many.push_back(det(i * 20.0, 0, i * 20.0 + 10, 10, 1));
    }
    const std::vector<detect::Detection> few{det(0, 0, 10, 10, 1)};
    EXPECT_GT(phi_between(few, many), 0.25);
}

TEST(Phi, BoundedZeroOne) {
    Rng rng{3};
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<detect::Detection> a;
        std::vector<detect::Detection> b;
        for (std::size_t i = 0; i < rng.index(8) + 1; ++i) {
            a.push_back(det(rng.uniform(0, 100), 0, rng.uniform(100, 200), 50,
                            1 + rng.index(4), rng.uniform()));
        }
        for (std::size_t i = 0; i < rng.index(8); ++i) {
            b.push_back(det(rng.uniform(0, 100), 0, rng.uniform(100, 200), 50,
                            1 + rng.index(4), rng.uniform()));
        }
        const double phi = phi_between(a, b);
        EXPECT_GE(phi, 0.0);
        EXPECT_LE(phi, 1.0);
    }
}

// -------------------------------------------------- detection_agreement ----

TEST(Agreement, PerfectMatchIsOne) {
    const std::vector<detect::Detection> a{det(0, 0, 10, 10, 1)};
    EXPECT_DOUBLE_EQ(detection_agreement(a, a), 1.0);
    EXPECT_DOUBLE_EQ(detection_agreement({}, {}), 1.0);
}

TEST(Agreement, DisjointIsZero) {
    const std::vector<detect::Detection> a{det(0, 0, 10, 10, 1)};
    const std::vector<detect::Detection> b{det(50, 50, 60, 60, 1)};
    EXPECT_DOUBLE_EQ(detection_agreement(a, b), 0.0);
    EXPECT_DOUBLE_EQ(detection_agreement(a, {}), 0.0);
    EXPECT_DOUBLE_EQ(detection_agreement({}, a), 0.0);
}

TEST(Agreement, PartialF1) {
    // 1 match out of 2 detections and 2 references: F1 = 2*1/(2+2) = 0.5.
    const std::vector<detect::Detection> mine{det(0, 0, 10, 10, 1), det(90, 90, 99, 99, 1)};
    const std::vector<detect::Detection> ref{det(0, 0, 10, 10, 1), det(40, 40, 50, 50, 1)};
    EXPECT_DOUBLE_EQ(detection_agreement(mine, ref), 0.5);
}

TEST(Agreement, ClassMatters) {
    const std::vector<detect::Detection> a{det(0, 0, 10, 10, 1)};
    const std::vector<detect::Detection> b{det(0, 0, 10, 10, 2)};
    EXPECT_DOUBLE_EQ(detection_agreement(a, b), 0.0);
}

// --------------------------------------------------------- Online_labeler --

struct Labeler_fixture : public ::testing::Test {
    static void SetUpTestSuite() {
        preset = new video::Dataset_preset{video::ua_detrac_like(17, 120.0)};
        stream = new video::Video_stream{preset->stream, preset->world, preset->schedule};
        teacher = models::make_teacher(stream->world(), 17).release();
        student = models::make_student(stream->world(), 17).release();
    }
    static void TearDownTestSuite() {
        delete student;
        delete teacher;
        delete stream;
        delete preset;
    }

    static video::Dataset_preset* preset;
    static video::Video_stream* stream;
    static models::Detector* teacher;
    static models::Detector* student;
};

video::Dataset_preset* Labeler_fixture::preset = nullptr;
video::Video_stream* Labeler_fixture::stream = nullptr;
models::Detector* Labeler_fixture::teacher = nullptr;
models::Detector* Labeler_fixture::student = nullptr;

TEST_F(Labeler_fixture, Eq1PositiveAndNegativeLabels) {
    Online_labeler labeler{*teacher};
    Rng rng{1};
    const video::Frame frame = stream->frame_at(200);
    const auto proposals = student->propose(frame, stream->world());
    const Labeled_frame labeled = labeler.label(frame, stream->world(), proposals, rng);

    ASSERT_FALSE(labeled.teacher_detections.empty());
    ASSERT_FALSE(labeled.samples.empty());
    std::size_t positives = 0;
    std::size_t negatives = 0;
    for (const auto& s : labeled.samples) {
        EXPECT_EQ(s.feature.size(), stream->world().feature_dim());
        if (s.class_label == 0) {
            ++negatives;
            EXPECT_LT(s.weight, 1.0 + 1e-12); // negatives carry reduced weight
        } else {
            ++positives;
            EXPECT_LE(s.class_label, stream->num_classes());
            EXPECT_DOUBLE_EQ(s.weight, 1.0);
        }
    }
    EXPECT_GT(positives, 0u);
    EXPECT_GT(negatives, 0u);
    // One-to-one matching: positives cannot exceed teacher detections.
    EXPECT_LE(positives, labeled.teacher_detections.size());
}

TEST_F(Labeler_fixture, PositiveBoxTargetsPointAtTeacherBoxes) {
    Online_labeler labeler{*teacher};
    Rng rng{2};
    const video::Frame frame = stream->frame_at(300);
    const auto proposals = student->propose(frame, stream->world());
    const Labeled_frame labeled = labeler.label(frame, stream->world(), proposals, rng);

    // Reconstruct: for every positive sample, applying its box target to the
    // matched proposal must land on SOME teacher detection box (IoU >= 0.5).
    std::size_t checked = 0;
    std::size_t sample_idx = 0;
    for (const auto& proposal : proposals) {
        if (sample_idx >= labeled.samples.size()) {
            break;
        }
        // The labeler may skip proposals (ambiguous zone), so re-match by
        // feature identity.
        const auto& s = labeled.samples[sample_idx];
        if (s.feature != proposal.feature) {
            continue;
        }
        ++sample_idx;
        if (s.class_label == 0) {
            continue;
        }
        const detect::Box rebuilt = models::apply_box_offsets(proposal.box, s.box_target);
        double best = 0.0;
        for (const auto& t : labeled.teacher_detections) {
            best = std::max(best, detect::iou(rebuilt, t.box));
        }
        EXPECT_GT(best, 0.9);
        ++checked;
    }
    EXPECT_GT(checked, 0u);
}

TEST_F(Labeler_fixture, LabelerConfigValidation) {
    EXPECT_THROW((Online_labeler{*teacher, Labeler_config{1.5, 0.2, 1.0, 0.75}}),
                 std::invalid_argument);
    EXPECT_THROW((Online_labeler{*teacher, Labeler_config{0.5, 0.2, 0.0, 0.75}}),
                 std::invalid_argument);
}

TEST_F(Labeler_fixture, TeacherLabelsAreMostlyCorrect) {
    // "we verify that the generated labels are very similar to human-
    // annotated labels" — check class correctness of positives against the
    // simulation ground truth, on daytime frames.
    Online_labeler labeler{*teacher};
    Rng rng{3};
    std::size_t positives = 0;
    std::size_t correct = 0;
    for (std::size_t k = 0; k < 20; ++k) {
        const video::Frame frame = stream->frame_at(k * 25); // daytime segment
        const auto proposals = student->propose(frame, stream->world());
        const Labeled_frame labeled = labeler.label(frame, stream->world(), proposals, rng);
        std::size_t sample_idx = 0;
        for (const auto& proposal : proposals) {
            if (sample_idx >= labeled.samples.size()) {
                break;
            }
            const auto& s = labeled.samples[sample_idx];
            if (s.feature != proposal.feature) {
                continue; // dropped by the ambiguous zone
            }
            ++sample_idx;
            if (s.class_label == 0 || !proposal.from_object) {
                continue;
            }
            ++positives;
            correct += (frame.objects[proposal.gt_index].class_id == s.class_label) ? 1 : 0;
        }
    }
    ASSERT_GT(positives, 30u);
    EXPECT_GT(static_cast<double>(correct) / static_cast<double>(positives), 0.8);
}

} // namespace
} // namespace shog::core
