// Tests for sim::run_cluster_sharded: device-sharded execution of ONE fleet
// must be observationally invisible. Every test is differential — the same
// cell through the sequential engine and the sharded engine at shard counts
// {1, 2, 3, hardware} must serialize to identical bytes (fps timelines,
// windowed-mAP series and Streaming_quantile fold order included), via
// tests/determinism_harness.hpp. Plus the failure path: a device whose
// strategy throws mid-run must propagate the exception out of
// run_cluster_sharded with all workers joined.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "determinism_harness.hpp"
#include "fleet/testbed.hpp"
#include "sim/harness.hpp"
#include "sim/shard.hpp"
#include "video/presets.hpp"

namespace shog::sim {
namespace {

constexpr std::size_t kShardCounts[] = {1, 2, 3, 0}; // 0 = hardware concurrency

// One testbed serves every differential test (construction dominates).
struct Shard_fixture : public ::testing::Test {
    static void SetUpTestSuite() {
        testbed = new fleet::Testbed{fleet::make_testbed("ua_detrac", 4, 23, 30.0)};
    }
    static void TearDownTestSuite() {
        delete testbed;
        testbed = nullptr;
    }
    static fleet::Testbed* testbed;
};

fleet::Testbed* Shard_fixture::testbed = nullptr;

TEST_F(Shard_fixture, ShardsOneMatchesRunClusterBitIdentically) {
    // The shards=1 pin: a single shard still runs the full protocol (worker
    // thread, proxy buffering, barrier rounds) and must reproduce the
    // sequential engine to the last bit.
    const fleet::Policy_setup setup{"priority", Policy_kind::priority, Sim_duration{}};
    shog::testing::expect_identical_cluster(
        [&] {
            return fleet::run_policy_cell(*testbed, 4, /*heterogeneous=*/true, setup, 23,
                                          /*shards=*/0);
        },
        [&] {
            return fleet::run_policy_cell(*testbed, 4, /*heterogeneous=*/true, setup, 23,
                                          /*shards=*/1);
        },
        "shards=1 vs run_cluster");
}

TEST_F(Shard_fixture, MixedFleetPolicyCellsByteIdenticalAcrossShardCounts) {
    // Property-style sweep over the contended operating point: the
    // half-Shoggoth half-AMS heterogeneous fleet under different policies
    // and seeds, replayed at every shard count against the sequential
    // serialization.
    const fleet::Policy_setup setups[] = {
        {"fifo", Policy_kind::fifo, Sim_duration{}},
        {"priority_preempt", Policy_kind::priority, Sim_duration{2.0}},
    };
    for (const std::uint64_t seed : {std::uint64_t{23}, std::uint64_t{111}}) {
        for (const fleet::Policy_setup& setup : setups) {
            const std::string reference = shog::testing::serialize_cluster(
                fleet::run_policy_cell(*testbed, 4, /*heterogeneous=*/true, setup, seed,
                                       /*shards=*/0));
            ASSERT_NE(reference.find("device 3"), std::string::npos);
            for (const std::size_t shards : kShardCounts) {
                EXPECT_EQ(reference,
                          shog::testing::serialize_cluster(fleet::run_policy_cell(
                              *testbed, 4, /*heterogeneous=*/true, setup, seed, shards)))
                    << setup.label << " seed=" << seed << " shards=" << shards;
            }
        }
    }
}

TEST_F(Shard_fixture, BatchedMultiGpuShardingCellByteIdentical) {
    // Cross-device teacher batching (max_batch > 1) coalesces jobs from
    // devices in *different* shards into one dispatch whose completion fans
    // callbacks back out — the hardest path for the delivery protocol.
    fleet::Sharding_setup setup;
    setup.label = "gpu2_batch4";
    setup.gpu_count = 2;
    setup.placement = Placement_kind::any_free;
    setup.policy = Policy_kind::fifo;
    setup.max_batch = 4;
    const std::string reference = shog::testing::serialize_cluster(
        fleet::run_sharding_cell(*testbed, 4, /*heterogeneous=*/true, setup, 23,
                                 /*shards=*/0));
    ASSERT_NE(reference.find("device 3"), std::string::npos);
    for (const std::size_t shards : kShardCounts) {
        EXPECT_EQ(reference,
                  shog::testing::serialize_cluster(fleet::run_sharding_cell(
                      *testbed, 4, /*heterogeneous=*/true, setup, 23, shards)))
            << "shards=" << shards;
    }
}

TEST_F(Shard_fixture, ReliabilityCellWithFailuresByteIdentical) {
    // Server failures, a 4x straggler, straggler re-queueing and preemption
    // all at once: every cloud-side perturbation the simulator models, still
    // byte-identical under sharding.
    fleet::Reliability_setup setup;
    setup.label = "failing_straggler";
    setup.gpu_count = 2;
    setup.placement = Placement_kind::speed_aware;
    setup.policy = Policy_kind::priority;
    setup.straggler_speed = 0.25;
    setup.mtbf = Sim_duration{12.0};
    setup.mttr = Sim_duration{3.0};
    setup.straggler_requeue_factor = 1.5;
    setup.preempt_label_wait = Sim_duration{2.0};
    const std::string reference = shog::testing::serialize_cluster(
        fleet::run_reliability_cell(*testbed, 4, /*heterogeneous=*/true, setup, 23,
                                    /*shards=*/0));
    ASSERT_NE(reference.find("device 3"), std::string::npos);
    for (const std::size_t shards : kShardCounts) {
        EXPECT_EQ(reference,
                  shog::testing::serialize_cluster(fleet::run_reliability_cell(
                      *testbed, 4, /*heterogeneous=*/true, setup, 23, shards)))
            << "shards=" << shards;
    }
}

// ---------------------------------------------------------------------------
// Failure propagation: no video/model machinery, just scripted strategies.
// ---------------------------------------------------------------------------

/// Periodically submits cloud work so shards genuinely interleave at the
/// coordinator before the bomb goes off.
class Quiet_strategy final : public Strategy {
public:
    [[nodiscard]] std::string name() const override { return "quiet"; }
    void start(Edge_runtime& rt) override { tick(rt); }
    [[nodiscard]] std::vector<detect::Detection> infer(Edge_runtime&,
                                                       const video::Frame&) override {
        return {};
    }

private:
    void tick(Edge_runtime& rt) {
        rt.cloud().submit(rt.device_id(), Sim_duration{0.3}, {});
        rt.schedule(Sim_duration{1.0}, [this, &rt] { tick(rt); });
    }
};

/// Same as Quiet_strategy until t=5, then throws from inside its shard's
/// parallel phase.
class Bomb_strategy final : public Strategy {
public:
    [[nodiscard]] std::string name() const override { return "bomb"; }
    void start(Edge_runtime& rt) override {
        rt.cloud().submit(rt.device_id(), Sim_duration{0.3}, {});
        rt.schedule(Sim_duration{5.0},
                    [] { throw std::runtime_error("device 2 failed"); });
    }
    [[nodiscard]] std::vector<detect::Detection> infer(Edge_runtime&,
                                                       const video::Frame&) override {
        return {};
    }
};

TEST(RunClusterSharded, ThrowingDevicePropagatesWithWorkersJoined) {
    const video::Dataset_preset preset = video::ua_detrac_like(7, 10.0);
    const video::Video_stream stream{preset.stream, preset.world, preset.schedule};

    Quiet_strategy quiet_a;
    Quiet_strategy quiet_b;
    Bomb_strategy bomb;
    Quiet_strategy quiet_c;
    std::vector<Device_spec> specs{{&quiet_a, &stream, {}},
                                   {&quiet_b, &stream, {}},
                                   {&bomb, &stream, {}},
                                   {&quiet_c, &stream, {}}};
    const Cluster_config config;
    for (const std::size_t shards : kShardCounts) {
        try {
            (void)run_cluster_sharded(specs, config, Shard_options{shards});
            FAIL() << "expected the device exception to propagate, shards=" << shards;
        } catch (const std::runtime_error& error) {
            EXPECT_STREQ(error.what(), "device 2 failed") << "shards=" << shards;
        }
    }

    // The engine is fully reusable after a failed run: a healthy fleet over
    // the same stream still completes (all workers from the failed runs were
    // joined; nothing leaked into this run).
    Quiet_strategy healthy_a;
    Quiet_strategy healthy_b;
    std::vector<Device_spec> healthy{{&healthy_a, &stream, {}}, {&healthy_b, &stream, {}}};
    const Cluster_result result = run_cluster_sharded(healthy, config, Shard_options{2});
    EXPECT_EQ(result.devices.size(), 2u);
    EXPECT_GT(result.cloud_jobs, 0u);
}

} // namespace
} // namespace shog::sim
