// Tests for the multi-edge cluster engine: the shared-clock / shared-cloud
// semantics of run_cluster, the GPU scheduler's contention behavior, and
// the paper's fleet-scalability claim (Shoggoth << AMS cloud GPU seconds
// per device at equal fleet size).
#include <gtest/gtest.h>

#include <memory>

#include "baselines/ams.hpp"
#include "baselines/edge_only.hpp"
#include "core/shoggoth.hpp"
#include "models/pretrain.hpp"
#include "sim/harness.hpp"
#include "video/presets.hpp"

namespace shog::sim {
namespace {

// ---------------------------------------------------------------------------
// Cloud_runtime unit tests (no video, no models — just the scheduler).
// ---------------------------------------------------------------------------

TEST(CloudRuntime, FifoOrderAndLatency) {
    Event_queue queue;
    Cloud_runtime cloud{queue, Cloud_config{}};
    std::vector<int> completions;
    // Two jobs submitted back-to-back at t=0: the second waits for the first.
    cloud.submit(0, Sim_duration{2.0}, [&] { completions.push_back(0); });
    cloud.submit(1, Sim_duration{3.0}, [&] { completions.push_back(1); });
    (void)queue.run_until(Sim_time{10.0});
    ASSERT_EQ(completions.size(), 2u);
    EXPECT_EQ(completions[0], 0);
    EXPECT_EQ(completions[1], 1);
    ASSERT_EQ(cloud.job_latencies().size(), 2u);
    EXPECT_EQ(cloud.job_latencies()[0], Sim_duration{2.0}); // no wait
    EXPECT_EQ(cloud.job_latencies()[1], Sim_duration{5.0}); // waited 2 s, served 3 s
    EXPECT_EQ(cloud.job_waits()[1], Sim_duration{2.0});
    EXPECT_EQ(cloud.busy_seconds(), Gpu_seconds{5.0});
    EXPECT_EQ(cloud.device_gpu_seconds(0), Gpu_seconds{2.0});
    EXPECT_EQ(cloud.device_gpu_seconds(1), Gpu_seconds{3.0});
    EXPECT_DOUBLE_EQ(cloud.utilization(Sim_time{10.0}), 0.5);
}

TEST(CloudRuntime, MultipleGpusServeInParallel) {
    Event_queue queue;
    Cloud_config config;
    config.gpu_count = 2;
    Cloud_runtime cloud{queue, config};
    cloud.submit(0, Sim_duration{2.0}, {});
    cloud.submit(1, Sim_duration{2.0}, {});
    cloud.submit(2, Sim_duration{2.0}, {});
    (void)queue.run_until(Sim_time{10.0});
    ASSERT_EQ(cloud.job_latencies().size(), 3u);
    // First two run immediately on separate GPUs; third waits for a slot.
    EXPECT_EQ(cloud.job_latencies()[0], Sim_duration{2.0});
    EXPECT_EQ(cloud.job_latencies()[1], Sim_duration{2.0});
    EXPECT_EQ(cloud.job_latencies()[2], Sim_duration{4.0});
}

TEST(CloudRuntime, BatchedDispatchDiscountsCoalescedJobs) {
    Event_queue queue;
    Cloud_config config;
    config.max_batch = 4;
    config.batch_efficiency = 0.5;
    Cloud_runtime cloud{queue, config};
    // First job occupies the GPU; three more queue behind it and coalesce.
    cloud.submit(0, Sim_duration{1.0}, {});
    cloud.submit(0, Sim_duration{2.0}, {});
    cloud.submit(0, Sim_duration{2.0}, {});
    cloud.submit(0, Sim_duration{2.0}, {});
    (void)queue.run_until(Sim_time{20.0});
    ASSERT_EQ(cloud.jobs_completed(), 4u);
    // Dispatch 1: job A alone (1 s). Dispatch 2: three jobs coalesced:
    // 2 + 0.5*2 + 0.5*2 = 4 s of service after 1 s of waiting, so all three
    // complete at t=5 with latency 5.
    EXPECT_EQ(cloud.job_latencies()[0], Sim_duration{1.0});
    EXPECT_EQ(cloud.job_latencies()[1], Sim_duration{5.0});
    EXPECT_EQ(cloud.job_latencies()[2], Sim_duration{5.0});
    EXPECT_EQ(cloud.job_latencies()[3], Sim_duration{5.0});
    EXPECT_DOUBLE_EQ(cloud.busy_seconds().value(), 5.0); // raw seconds: discount sum carries ulp residue
}

TEST(CloudRuntime, BatchingNeverStarvesIdleServers) {
    Event_queue queue;
    Cloud_config config;
    config.gpu_count = 2;
    config.max_batch = 8;
    Cloud_runtime cloud{queue, config};
    // Two simultaneous jobs with idle capacity for both: each takes its own
    // GPU; coalescing only happens on the last idle server.
    cloud.submit(0, Sim_duration{2.0}, {});
    cloud.submit(1, Sim_duration{2.0}, {});
    (void)queue.run_until(Sim_time{10.0});
    ASSERT_EQ(cloud.jobs_completed(), 2u);
    EXPECT_EQ(cloud.job_latencies()[0], Sim_duration{2.0});
    EXPECT_EQ(cloud.job_latencies()[1], Sim_duration{2.0});
    EXPECT_EQ(cloud.peak_queue_depth(), 0u);
}

TEST(CloudRuntime, CompletionMaySubmitFollowUpWork) {
    Event_queue queue;
    Cloud_runtime cloud{queue, Cloud_config{}};
    bool chained = false;
    cloud.submit(0, Sim_duration{1.0}, [&] {
        cloud.submit(0, Sim_duration{1.0}, [&] { chained = true; });
    });
    (void)queue.run_until(Sim_time{10.0});
    EXPECT_TRUE(chained);
    EXPECT_EQ(cloud.busy_seconds(), Gpu_seconds{2.0});
}

// ---------------------------------------------------------------------------
// Cluster engine integration tests.
// ---------------------------------------------------------------------------

struct Cluster_fixture : public ::testing::Test {
    static void SetUpTestSuite() {
        preset = new video::Dataset_preset{video::ua_detrac_like(41, 120.0)};
        stream = new video::Video_stream{preset->stream, preset->world, preset->schedule};
        // Second camera: same world (one pretrained model pool serves the
        // fleet), different track population.
        video::Stream_config second_camera = preset->stream;
        second_camera.seed = preset->stream.seed + 1;
        stream_b = new video::Video_stream{second_camera, preset->world, preset->schedule};
        pristine = models::make_student(stream->world(), 41).release();
        teacher = models::make_teacher(stream->world(), 41).release();
    }
    static void TearDownTestSuite() {
        delete teacher;
        delete pristine;
        delete stream_b;
        delete stream;
        delete preset;
    }
    void SetUp() override { config.harness.eval_stride = 15; }

    struct Fleet {
        std::vector<std::unique_ptr<models::Detector>> students;
        std::vector<std::unique_ptr<Strategy>> strategies;
        std::vector<Device_spec> specs;
    };

    /// N Shoggoth devices over the shared stream, each with its own student.
    Fleet shoggoth_fleet(std::size_t n, device::Compute_model cloud_device = device::v100(),
                         core::Shoggoth_config cfg = {}) {
        Fleet fleet;
        for (std::size_t i = 0; i < n; ++i) {
            fleet.students.push_back(pristine->clone());
            fleet.strategies.push_back(std::make_unique<core::Shoggoth_strategy>(
                *fleet.students.back(), *teacher, cfg,
                models::Deployed_profile::yolov4_resnet18(), device::jetson_tx2(),
                cloud_device));
            fleet.specs.push_back(Device_spec{fleet.strategies.back().get(), stream, {}});
        }
        return fleet;
    }

    Fleet ams_fleet(std::size_t n) {
        Fleet fleet;
        for (std::size_t i = 0; i < n; ++i) {
            fleet.students.push_back(pristine->clone());
            fleet.strategies.push_back(std::make_unique<baselines::Ams_strategy>(
                *fleet.students.back(), *teacher, baselines::Ams_config{},
                models::Deployed_profile::yolov4_resnet18(), device::v100()));
            fleet.specs.push_back(Device_spec{fleet.strategies.back().get(), stream, {}});
        }
        return fleet;
    }

    static video::Dataset_preset* preset;
    static video::Video_stream* stream;
    static video::Video_stream* stream_b;
    static models::Detector* pristine;
    static models::Detector* teacher;
    Cluster_config config;
};

video::Dataset_preset* Cluster_fixture::preset = nullptr;
video::Video_stream* Cluster_fixture::stream = nullptr;
video::Video_stream* Cluster_fixture::stream_b = nullptr;
models::Detector* Cluster_fixture::pristine = nullptr;
models::Detector* Cluster_fixture::teacher = nullptr;

TEST_F(Cluster_fixture, ClusterOfOneMatchesRunStrategy) {
    // run_strategy must be exactly a cluster of one: same seed, same clock,
    // same contended-cloud path, bit-identical metrics.
    auto s1 = pristine->clone();
    core::Shoggoth_strategy single{*s1, *teacher, core::Shoggoth_config{},
                                   models::Deployed_profile::yolov4_resnet18(),
                                   device::jetson_tx2(), device::v100()};
    const Run_result a = run_strategy(single, *stream, config.harness);

    Fleet fleet = shoggoth_fleet(1);
    const Cluster_result cluster = run_cluster(fleet.specs, config);
    ASSERT_EQ(cluster.devices.size(), 1u);
    const Run_result& b = cluster.devices.front();

    EXPECT_DOUBLE_EQ(a.map, b.map);
    EXPECT_DOUBLE_EQ(a.map_pooled, b.map_pooled);
    EXPECT_DOUBLE_EQ(a.average_fps, b.average_fps);
    EXPECT_DOUBLE_EQ(a.up_kbps, b.up_kbps);
    EXPECT_DOUBLE_EQ(a.down_kbps, b.down_kbps);
    EXPECT_DOUBLE_EQ(a.cloud_gpu_seconds, b.cloud_gpu_seconds);
    EXPECT_EQ(a.training_sessions, b.training_sessions);
    EXPECT_EQ(a.evaluated_frames, b.evaluated_frames);
}

TEST_F(Cluster_fixture, FleetRunsAreDeterministic) {
    // Same seed => bit-identical per-device results and fleet aggregates.
    Fleet f1 = shoggoth_fleet(3);
    const Cluster_result a = run_cluster(f1.specs, config);
    Fleet f2 = shoggoth_fleet(3);
    const Cluster_result b = run_cluster(f2.specs, config);

    ASSERT_EQ(a.devices.size(), b.devices.size());
    for (std::size_t i = 0; i < a.devices.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.devices[i].map, b.devices[i].map);
        EXPECT_DOUBLE_EQ(a.devices[i].up_kbps, b.devices[i].up_kbps);
        EXPECT_DOUBLE_EQ(a.devices[i].cloud_gpu_seconds, b.devices[i].cloud_gpu_seconds);
        EXPECT_EQ(a.devices[i].training_sessions, b.devices[i].training_sessions);
    }
    EXPECT_DOUBLE_EQ(a.gpu_busy_seconds, b.gpu_busy_seconds);
    EXPECT_DOUBLE_EQ(a.mean_label_latency, b.mean_label_latency);
    EXPECT_DOUBLE_EQ(a.p95_label_latency, b.p95_label_latency);
    EXPECT_EQ(a.cloud_jobs, b.cloud_jobs);
}

TEST(ClusterSeeds, DeviceSubstreamsAreDistinct) {
    // Device 0 keeps the base seed (cluster-of-one equivalence); the others
    // get decorrelated substreams.
    EXPECT_EQ(device_seed(17, 0), 17u);
    EXPECT_NE(device_seed(17, 1), device_seed(17, 0));
    EXPECT_NE(device_seed(17, 2), device_seed(17, 1));
}

TEST_F(Cluster_fixture, DevicesRunTheirOwnStreams) {
    // A fleet mixes devices watching different videos; each device's
    // metrics must be measured against its own stream, not the fleet's.
    Fleet fleet = shoggoth_fleet(2);
    fleet.specs[1].stream = stream_b;
    const Cluster_result cluster = run_cluster(fleet.specs, config);
    ASSERT_EQ(cluster.devices.size(), 2u);
    EXPECT_NE(cluster.devices[0].up_kbps, cluster.devices[1].up_kbps);
    EXPECT_NE(cluster.devices[0].map, cluster.devices[1].map);
    EXPECT_GT(cluster.devices[0].map, 0.0);
    EXPECT_GT(cluster.devices[1].map, 0.0);
}

TEST_F(Cluster_fixture, LabelLatencyGrowsWithFleetSize) {
    // On a deliberately weak cloud GPU, queueing delay must grow
    // monotonically with device count (the whole point of modeling the
    // cloud as a contended resource rather than a per-run sum).
    const device::Compute_model weak_gpu{"weak-gpu", 1.0};
    core::Shoggoth_config cfg;
    cfg.adaptive_sampling = false; // fixed 2 fps => constant offered load
    std::vector<double> latency;
    for (std::size_t n : {1u, 2u, 4u}) {
        Fleet fleet = shoggoth_fleet(n, weak_gpu, cfg);
        const Cluster_result cluster = run_cluster(fleet.specs, config);
        ASSERT_GT(cluster.cloud_jobs, 0u);
        latency.push_back(cluster.mean_label_latency);
    }
    EXPECT_LT(latency[0], latency[1]);
    EXPECT_LT(latency[1], latency[2]);
}

TEST_F(Cluster_fixture, ShoggothFleetUsesLessCloudGpuPerDeviceThanAms) {
    // The paper's scalability claim, now measured rather than extrapolated:
    // with training on the edge, a Shoggoth fleet consumes strictly less
    // cloud GPU time per device than an equal-size AMS fleet, whose cloud
    // fine-tuning dominates the GPU.
    Fleet shoggoth = shoggoth_fleet(4);
    const Cluster_result shog = run_cluster(shoggoth.specs, config);
    Fleet ams = ams_fleet(4);
    const Cluster_result ams_result = run_cluster(ams.specs, config);

    EXPECT_LT(shog.gpu_seconds_per_device(), ams_result.gpu_seconds_per_device())
        << "Shoggoth " << shog.gpu_seconds_per_device() << " s/device vs AMS "
        << ams_result.gpu_seconds_per_device() << " s/device";
    // GPU utilization is a meaningful fleet aggregate in both cases.
    EXPECT_GT(shog.gpu_utilization, 0.0);
    EXPECT_GT(ams_result.gpu_utilization, shog.gpu_utilization);
}

} // namespace
} // namespace shog::sim
