// Tests for the pluggable cloud scheduling policies (priority ordering,
// fair-share deficit bound, preemption checkpoint/resume, per-policy
// determinism) and regression tests for the PR 2 simulator bugfixes:
// end-of-stream sample loss, arrival-order GPU billing skew, fps-tick float
// drift, and float-keyed mAP-window matching.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/shoggoth.hpp"
#include "fleet/testbed.hpp"
#include "models/pretrain.hpp"
#include "sim/cloud.hpp"
#include "sim/harness.hpp"
#include "video/presets.hpp"

namespace shog::sim {
namespace {

// ---------------------------------------------------------------------------
// Scheduling-policy unit tests (no video, no models — just the scheduler).
// ---------------------------------------------------------------------------

TEST(SchedulingPolicy, NamesRoundTrip) {
    for (Policy_kind kind : {Policy_kind::fifo, Policy_kind::priority,
                             Policy_kind::fair_share, Policy_kind::staleness}) {
        EXPECT_EQ(policy_by_name(to_string(kind)), kind);
        EXPECT_STREQ(make_policy(kind)->name(), to_string(kind));
    }
    EXPECT_THROW((void)policy_by_name("shortest-job-first"), std::invalid_argument);
}

TEST(SchedulingPolicy, PriorityServesLabelsBeforeQueuedTrains) {
    Event_queue queue;
    Cloud_config config;
    config.policy = Policy_kind::priority;
    Cloud_runtime cloud{queue, config};
    std::vector<std::string> order;
    // A train job occupies the GPU; another train queues; a label job
    // submitted *after* both must still run before the queued train.
    cloud.submit(0, Sim_duration{5.0}, [&] { order.push_back("train0"); }, Cloud_job_kind::train);
    cloud.submit(0, Sim_duration{5.0}, [&] { order.push_back("train1"); }, Cloud_job_kind::train);
    cloud.submit(1, Sim_duration{1.0}, [&] { order.push_back("label"); }, Cloud_job_kind::label);
    (void)queue.run_until(Sim_time{20.0});
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], "train0");
    EXPECT_EQ(order[1], "label");
    EXPECT_EQ(order[2], "train1");
    // The label waited only for the in-flight train: latency 5 + 1 (FIFO
    // would have been 10 + 1).
    EXPECT_EQ(cloud.mean_label_latency(), Sim_duration{6.0});
}

TEST(SchedulingPolicy, FairShareFavorsTheDeficitDevice) {
    Event_queue queue;
    Cloud_config config;
    config.policy = Policy_kind::fair_share;
    Cloud_runtime cloud{queue, config};
    std::vector<std::string> order;
    // Device 0 floods the queue; device 1 submits one job last. Once the
    // first dispatch bills device 0, device 1 holds the deficit and jumps
    // the backlog.
    cloud.submit(0, Sim_duration{1.0}, [&] { order.push_back("a0"); });
    cloud.submit(0, Sim_duration{1.0}, [&] { order.push_back("a1"); });
    cloud.submit(0, Sim_duration{1.0}, [&] { order.push_back("a2"); });
    cloud.submit(1, Sim_duration{1.0}, [&] { order.push_back("b0"); });
    (void)queue.run_until(Sim_time{20.0});
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], "a0");
    EXPECT_EQ(order[1], "b0");
    EXPECT_EQ(order[2], "a1");
    EXPECT_EQ(order[3], "a2");
}

TEST(SchedulingPolicy, FairShareBoundsTheDeficitBetweenEqualDevices) {
    Event_queue queue;
    Cloud_config config;
    config.policy = Policy_kind::fair_share;
    Cloud_runtime cloud{queue, config};
    // Device 0 submits its whole backlog before device 1 (the worst case
    // for FIFO, whose deficit would reach 8 jobs); fair share alternates.
    const Sim_duration service{1.0};
    double max_gap = 0.0; // raw GPU-seconds gap, compared against the bound below
    const auto observe = [&] {
        max_gap = std::max(max_gap, std::abs((cloud.device_gpu_seconds(0) -
                                              cloud.device_gpu_seconds(1))
                                                 .value())); // raw gap for std::abs
    };
    for (int i = 0; i < 8; ++i) {
        cloud.submit(0, service, observe);
    }
    for (int i = 0; i < 8; ++i) {
        cloud.submit(1, service, observe);
    }
    (void)queue.run_until(Sim_time{100.0});
    EXPECT_EQ(cloud.jobs_completed(), 16u);
    // Deficit bound: two equally-loaded devices never drift apart by more
    // than one job's service (after the initial pre-contention dispatch).
    EXPECT_LE(max_gap, 2.0 * service.value() + 1e-12); // raw seconds bound
    EXPECT_NEAR(cloud.device_gpu_seconds(0).value(),  // raw seconds for the tolerance check
                cloud.device_gpu_seconds(1).value(), 1e-12); // raw seconds for the tolerance check

}

TEST(CloudRuntime, PreemptionCheckpointsAndResumesTrainWork) {
    Event_queue queue;
    Cloud_config config;
    config.preempt_label_wait = Sim_duration{1.0};
    Cloud_runtime cloud{queue, config};
    Sim_time train_done_at{-1.0};
    Sim_time label_done_at{-1.0};
    // A 10 s fine-tune starts at t=0; a label job arrives at t=2 and may
    // wait at most 1 s.
    cloud.submit(0, Sim_duration{10.0}, [&] { train_done_at = queue.now(); },
                 Cloud_job_kind::train);
    queue.schedule(Sim_time{2.0}, [&] {
        cloud.submit(1, Sim_duration{1.0}, [&] { label_done_at = queue.now(); });
    });
    (void)queue.run_until(Sim_time{30.0});
    // t=3: bound expires, the train checkpoints (3 s executed, 7 s left);
    // label runs 3->4; train resumes 4->11.
    EXPECT_EQ(label_done_at, Sim_time{4.0});
    EXPECT_EQ(train_done_at, Sim_time{11.0});
    EXPECT_EQ(cloud.preemptions(), 1u);
    // No work lost or double-billed across the checkpoint.
    EXPECT_EQ(cloud.busy_seconds(), Gpu_seconds{11.0});
    EXPECT_EQ(cloud.device_gpu_seconds(0), Gpu_seconds{10.0});
    EXPECT_EQ(cloud.device_gpu_seconds(1), Gpu_seconds{1.0});
    EXPECT_DOUBLE_EQ(cloud.utilization(Sim_time{11.0}), 1.0);
    ASSERT_EQ(cloud.job_latencies().size(), 2u);
    EXPECT_EQ(cloud.mean_label_latency(), Sim_duration{2.0}); // submitted 2, done 4
}

TEST(CloudRuntime, PreemptedServerGoesToTheStarvedLabelNotTheNextTrain) {
    Event_queue queue;
    Cloud_config config;
    config.preempt_label_wait = Sim_duration{1.0};
    Cloud_runtime cloud{queue, config};
    Sim_time label_done_at{-1.0};
    // Train A in flight, train B queued ahead of the label. Preempting A
    // must hand the server to the overdue label, not to FIFO-front B —
    // otherwise the wait bound is violated by B's whole service time.
    cloud.submit(0, Sim_duration{10.0}, {}, Cloud_job_kind::train);
    cloud.submit(0, Sim_duration{10.0}, {}, Cloud_job_kind::train);
    queue.schedule(Sim_time{2.0}, [&] {
        cloud.submit(1, Sim_duration{1.0}, [&] { label_done_at = queue.now(); });
    });
    (void)queue.run_until(Sim_time{60.0});
    EXPECT_EQ(cloud.preemptions(), 1u);
    EXPECT_EQ(label_done_at, Sim_time{4.0}); // preempted at 3, served 3->4
    // All train work still completes: A's 3 s + B's 10 s + A's 7 s resume.
    EXPECT_EQ(cloud.busy_seconds(), Gpu_seconds{21.0});
    EXPECT_EQ(cloud.device_gpu_seconds(0), Gpu_seconds{20.0});
}

TEST(CloudRuntime, CoalescingNeverMixesLabelAndTrainJobs) {
    Event_queue queue;
    Cloud_config config;
    config.max_batch = 3;
    config.batch_efficiency = 0.5;
    Cloud_runtime cloud{queue, config};
    Sim_time label_done_at{-1.0};
    // GPU busy; a label and a train queue behind it. Coalescing the train
    // into the label's dispatch would make the label wait out the train's
    // 10 s service; kind-homogeneous dispatches keep them apart.
    cloud.submit(0, Sim_duration{1.0}, {});
    cloud.submit(1, Sim_duration{1.0}, [&] { label_done_at = queue.now(); });
    cloud.submit(2, Sim_duration{10.0}, {}, Cloud_job_kind::train);
    (void)queue.run_until(Sim_time{30.0});
    EXPECT_EQ(label_done_at, Sim_time{2.0}); // 1 s wait + 1 s service, no rider
    ASSERT_EQ(cloud.jobs_completed(), 3u);
}

TEST(CloudRuntime, PreemptionLeavesLabelDispatchesAlone) {
    Event_queue queue;
    Cloud_config config;
    config.preempt_label_wait = Sim_duration{1.0};
    Cloud_runtime cloud{queue, config};
    std::vector<std::string> order;
    // Only label dispatches in flight: nothing is preemptible, so a queued
    // label simply waits its FIFO turn.
    cloud.submit(0, Sim_duration{5.0}, [&] { order.push_back("label0"); });
    cloud.submit(1, Sim_duration{1.0}, [&] { order.push_back("label1"); });
    (void)queue.run_until(Sim_time{20.0});
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], "label0");
    EXPECT_EQ(cloud.preemptions(), 0u);
    EXPECT_EQ(cloud.job_latencies()[1], Sim_duration{6.0});
}

TEST(SchedulingPolicy, PriorityAndFairShareCutP95LabelLatencyUnderTrainLoad) {
    // A synthetic fleet on one GPU: four cameras label steadily while two
    // AMS-style devices drop long fine-tunes into the queue — the exact
    // starvation pattern the non-FIFO policies exist to break.
    const auto p95 = [](Policy_kind kind) {
        Event_queue queue;
        Cloud_config config;
        config.policy = kind;
        Cloud_runtime cloud{queue, config};
        for (std::size_t d = 0; d < 4; ++d) {
            for (int i = 0; i < 40; ++i) {
                queue.schedule(Sim_time{4.0 * i + 0.1 * static_cast<double>(d)},
                               [&cloud, d] { cloud.submit(d, Sim_duration{0.5}, {}); });
            }
        }
        for (std::size_t d = 4; d < 6; ++d) {
            for (int i = 0; i < 4; ++i) {
                queue.schedule(Sim_time{40.0 * i + 0.05 * static_cast<double>(d)},
                               [&cloud, d] {
                                   cloud.submit(d, Sim_duration{8.0}, {},
                                                Cloud_job_kind::train);
                               });
            }
        }
        (void)queue.run_until(Sim_time{400.0});
        return cloud.p95_label_latency();
    };
    const Sim_duration fifo = p95(Policy_kind::fifo);
    const Sim_duration priority = p95(Policy_kind::priority);
    const Sim_duration fair = p95(Policy_kind::fair_share);
    EXPECT_LT(priority, fifo);
    EXPECT_LT(fair, fifo);
}

TEST(SchedulingPolicy, AllPoliciesAreDeterministicAcrossReruns) {
    for (Policy_kind kind :
         {Policy_kind::fifo, Policy_kind::priority, Policy_kind::fair_share}) {
        const auto run_script = [kind] {
            Event_queue queue;
            Cloud_config config;
            config.policy = kind;
            config.max_batch = 3;
            config.batch_efficiency = 0.6;
            config.preempt_label_wait = Sim_duration{2.0};
            Cloud_runtime cloud{queue, config};
            // A scripted mixed workload: staggered labels and trains from
            // three devices, enough to exercise coalescing and preemption.
            for (int i = 0; i < 4; ++i) {
                queue.schedule(Sim_time{static_cast<double>(i) * 1.5}, [&cloud, i] {
                    cloud.submit(static_cast<std::size_t>(i % 3), Sim_duration{4.0}, {},
                                 Cloud_job_kind::train);
                    cloud.submit(static_cast<std::size_t>((i + 1) % 3), Sim_duration{0.5},
                                 {}, Cloud_job_kind::label);
                });
            }
            (void)queue.run_until(Sim_time{60.0});
            return cloud.job_latencies();
        };
        const std::vector<Sim_duration> a = run_script();
        const std::vector<Sim_duration> b = run_script();
        ASSERT_EQ(a.size(), b.size()) << to_string(kind);
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i], b[i]) << to_string(kind) << " job " << i;
        }
    }
}

// ---------------------------------------------------------------------------
// Bugfix regressions.
// ---------------------------------------------------------------------------

TEST(CloudRuntime, PreemptBoundSurvivesUlpLateCheck) {
    // The one-shot preempt_check fires at exactly submitted + bound, but in
    // floating point (0.3 + 0.6) - 0.3 < 0.6, so at the check's own firing
    // instant the overdue override in select_next could fail to recognize
    // the very job whose bound just expired. Pre-fix sequence: the check
    // preempts the in-flight train, the freed server goes to the *next
    // queued train* (FIFO front), and the label — its timer now consumed —
    // waits out that train's entire 10 s service. The fix marks the job
    // overdue at its check, so the freed server serves it immediately.
    Event_queue queue;
    Cloud_config config;
    config.preempt_label_wait = Sim_duration{0.6};
    Cloud_runtime cloud{queue, config};
    Sim_time label_done{-1.0};
    cloud.submit(0, Sim_duration{10.0}, {}, Cloud_job_kind::train);
    queue.schedule(Sim_time{0.05}, [&] {
        cloud.submit(0, Sim_duration{10.0}, {}, Cloud_job_kind::train);
    });
    queue.schedule(Sim_time{0.3}, [&] {
        cloud.submit(1, Sim_duration{1.0}, [&] { label_done = queue.now(); });
    });
    (void)queue.run_until(Sim_time{60.0});
    EXPECT_EQ(cloud.preemptions(), 1u);
    // Check fires at 0.3 + 0.6 (one ulp short of a 0.6 wait); the label runs
    // right after the preemption: done just before t=1.9. Pre-fix it
    // finished after the second train, at t ~ 11.9.
    EXPECT_NEAR(label_done.value(), 1.9, 1e-9); // raw seconds for the tolerance check
    EXPECT_LT(label_done - Sim_time{0.3} - Sim_duration{1.0},
              config.preempt_label_wait + Sim_duration{1e-9});
}

TEST(CloudRuntime, BoundLapseNeverHandsTheServerToAQueuedTrain) {
    // The "no victim in flight" lapse: the label's bound expires while a
    // long *label* dispatch holds the only server (nothing preemptible), so
    // the one-shot check finds no victim. When the server finally frees,
    // the overdue label must outrank the FIFO-front train queued before it.
    Event_queue queue;
    Cloud_config config;
    config.preempt_label_wait = Sim_duration{2.0};
    Cloud_runtime cloud{queue, config};
    Sim_time label_done{-1.0};
    Sim_time train_done{-1.0};
    cloud.submit(0, Sim_duration{4.0}, {}); // label, runs 0->4
    queue.schedule(Sim_time{0.1}, [&] {
        cloud.submit(0, Sim_duration{10.0}, [&] { train_done = queue.now(); },
                     Cloud_job_kind::train);
    });
    queue.schedule(Sim_time{0.5}, [&] {
        cloud.submit(1, Sim_duration{1.0}, [&] { label_done = queue.now(); });
    });
    (void)queue.run_until(Sim_time{60.0});
    EXPECT_EQ(cloud.preemptions(), 0u); // nothing preemptible ever in flight
    EXPECT_EQ(label_done, Sim_time{5.0}); // served at first server-free
    EXPECT_EQ(train_done, Sim_time{15.0});
}

TEST(SchedulingPolicy, FairShareTieBreaksFifoUnderUlpLedgerNoise) {
    // Prorated coalesced billing and preemption refunds leave ulp-scale
    // residue on the per-device ledger; the documented FIFO degeneracy on
    // tied devices must survive it. Inject the classic 0.1 + 0.2 != 0.3
    // residue directly: pre-fix, the exact-equality compare saw device 1 as
    // "strictly less billed" and served it first despite device 0's earlier
    // submission.
    Event_queue queue;
    Cloud_config config;
    config.policy = Policy_kind::fair_share;
    Cloud_runtime cloud{queue, config};
    cloud.account_direct(0, Gpu_seconds{0.1 + 0.2}); // 0.30000000000000004
    cloud.account_direct(1, Gpu_seconds{0.3});
    cloud.account_direct(9, Gpu_seconds{100.0}); // the blocker never wins a deficit
    std::vector<int> order;
    cloud.submit(9, Sim_duration{1.0}, {}); // occupies the server so 0 and 1 queue
    cloud.submit(0, Sim_duration{1.0}, [&] { order.push_back(0); });
    cloud.submit(1, Sim_duration{1.0}, [&] { order.push_back(1); });
    (void)queue.run_until(Sim_time{20.0});
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 0); // FIFO degeneracy: earlier submission first
    EXPECT_EQ(order[1], 1);
}

TEST(CloudRuntime, CoalescedBillingIsArrivalOrderIndependent) {
    // Two devices submit identical jobs that coalesce into one dispatch;
    // whichever arrived first must not pay more (pre-fix: the first member
    // paid full service, followers got the batch discount).
    const auto billed = [](std::size_t first, std::size_t second) {
        Event_queue queue;
        Cloud_config config;
        config.max_batch = 2;
        config.batch_efficiency = 0.5;
        Cloud_runtime cloud{queue, config};
        cloud.submit(9, Sim_duration{1.0}, {}); // occupies the GPU so the pair coalesces
        cloud.submit(first, Sim_duration{2.0}, {});
        cloud.submit(second, Sim_duration{2.0}, {});
        (void)queue.run_until(Sim_time{20.0});
        return std::pair{cloud.device_gpu_seconds(0), cloud.device_gpu_seconds(1)};
    };
    const auto [a0, a1] = billed(0, 1);
    EXPECT_EQ(a0, a1);
    const auto [b0, b1] = billed(1, 0);
    EXPECT_EQ(b0, b1);
    EXPECT_EQ(a0, b0);
    // The coalesced dispatch costs 2 + 0.5*2 = 3 GPU seconds, split evenly.
    EXPECT_EQ(a0, Gpu_seconds{1.5});
}

TEST(Harness, WindowedGainToleratesUlpOffsetWindowStarts) {
    Run_result result;
    Run_result baseline;
    // Same nominal 20 s windows, but one series' starts carry accumulated
    // floating-point error (pre-fix: exact-key matching dropped them all).
    for (int i = 0; i < 5; ++i) {
        const double start = 20.0 * i;
        result.windowed_map.emplace_back(start + (i > 0 ? 1e-9 : 0.0), 0.5 + 0.01 * i);
        baseline.windowed_map.emplace_back(start, 0.4);
    }
    const std::vector<double> gains = windowed_gain(result, baseline);
    ASSERT_EQ(gains.size(), 5u);
    for (int i = 0; i < 5; ++i) {
        EXPECT_NEAR(gains[static_cast<std::size_t>(i)], 0.1 + 0.01 * i, 1e-12);
    }
}

TEST(Harness, WindowedGainAlignsByConfiguredWindowWhenWindowsAreSkipped) {
    // The evaluator omits windows with no eval frames, so the first emitted
    // gap can span several windows (0 -> 40 for a 20 s window). Inferring
    // the stride from that gap would collapse windows 60 and 80 onto one
    // index and mispair the gains; the configured map_window disambiguates.
    Run_result result;
    Run_result baseline;
    result.map_window = 20.0;
    baseline.map_window = 20.0;
    for (double start : {0.0, 40.0, 60.0, 80.0}) {
        result.windowed_map.emplace_back(start, 0.5 + start / 1000.0);
        baseline.windowed_map.emplace_back(start, 0.4 + start / 1000.0);
    }
    const std::vector<double> gains = windowed_gain(result, baseline);
    ASSERT_EQ(gains.size(), 4u);
    for (double gain : gains) {
        EXPECT_NEAR(gain, 0.1, 1e-12); // every window paired with itself
    }
}

TEST(Harness, WindowedGainPairsSingleWindows) {
    Run_result result;
    Run_result baseline;
    result.windowed_map.emplace_back(0.0, 0.6);
    baseline.windowed_map.emplace_back(1e-9, 0.4);
    const std::vector<double> gains = windowed_gain(result, baseline);
    ASSERT_EQ(gains.size(), 1u);
    EXPECT_NEAR(gains.front(), 0.2, 1e-12);
}

/// Minimal do-nothing strategy: lets harness-level regressions run without
/// models or networks.
class Idle_strategy final : public Strategy {
public:
    [[nodiscard]] std::string name() const override { return "Idle"; }
    void start(Edge_runtime& rt) override { (void)rt; }
    [[nodiscard]] std::vector<detect::Detection> infer(Edge_runtime& rt,
                                                       const video::Frame& frame) override {
        (void)rt;
        (void)frame;
        return {};
    }
};

/// Publishes a known fps override that steps to a new value just before the
/// stream ends, so the test can tell whether the tail was sampled at all.
class Fps_probe_strategy final : public Strategy {
public:
    [[nodiscard]] std::string name() const override { return "FpsProbe"; }
    void start(Edge_runtime& rt) override {
        rt.set_fps_override(10.0);
        rt.schedule(Sim_duration{1.9}, [&rt] { rt.set_fps_override(50.0); });
    }
    [[nodiscard]] std::vector<detect::Detection> infer(Edge_runtime& rt,
                                                       const video::Frame& frame) override {
        (void)rt;
        (void)frame;
        return {};
    }
};

TEST(Harness, FpsTimelineReachesTheStreamDuration) {
    // duration = 2.0, fps_tick = 0.3: accumulating t += 0.3 lands the sixth
    // tick on 1.7999999999999998 and the seventh on 2.0999... > 2.0, so the
    // pre-fix loop never sampled past 1.8 and the fps step at t=1.9 was
    // invisible. The fixed loop schedules a tail sample at exactly the
    // stream duration.
    video::Dataset_preset preset = video::ua_detrac_like(3, 2.0);
    const video::Video_stream stream{preset.stream, preset.world, preset.schedule};
    Fps_probe_strategy probe;
    Harness_config config;
    config.eval_stride = 8;
    config.fps_tick = Sim_duration{0.3};
    const Run_result result = run_strategy(probe, stream, config);
    ASSERT_FALSE(result.fps_timeline.empty());
    EXPECT_DOUBLE_EQ(result.fps_timeline.front().first, 0.0);
    // 10 fps for [0, ~1.8) plus 50 fps for the ~0.2 s tail: mean 14 (the
    // pre-fix timeline stopped at 1.8 and averaged exactly 10).
    EXPECT_NEAR(result.average_fps, 14.0, 1e-9);
}

// ---------------------------------------------------------------------------
// End-of-stream sample-loss regression (needs real models + a stream).
// ---------------------------------------------------------------------------

struct Shoggoth_flush : public ::testing::Test {
    static void SetUpTestSuite() {
        preset = new video::Dataset_preset{video::ua_detrac_like(7, 24.0)};
        stream = new video::Video_stream{preset->stream, preset->world, preset->schedule};
        student = models::make_student(stream->world(), 7).release();
        teacher = models::make_teacher(stream->world(), 7).release();
    }
    static void TearDownTestSuite() {
        delete teacher;
        delete student;
        delete stream;
        delete preset;
    }
    static video::Dataset_preset* preset;
    static video::Video_stream* stream;
    static models::Detector* student;
    static models::Detector* teacher;
};

video::Dataset_preset* Shoggoth_flush::preset = nullptr;
video::Video_stream* Shoggoth_flush::stream = nullptr;
models::Detector* Shoggoth_flush::student = nullptr;
models::Detector* Shoggoth_flush::teacher = nullptr;

TEST_F(Shoggoth_flush, TailBufferIsUploadedAtStreamEnd) {
    auto local_student = student->clone();
    core::Shoggoth_config config;
    config.adaptive_sampling = false;
    config.fixed_rate = 1.0;            // one sample per second: 23 ticks
    config.upload_batch_frames = 64;    // the buffer never fills...
    config.upload_max_wait = Sim_duration{1.0e6}; // ...max-wait never triggers,
    config.warm_replay = false;         // (keep the test fast)
    core::Shoggoth_strategy strategy{*local_student, *teacher, config,
                                     models::Deployed_profile::yolov4_resnet18(),
                                     device::jetson_tx2(), device::v100()};
    Harness_config harness;
    harness.eval_stride = 60;
    (void)run_strategy(strategy, *stream, harness);
    // Pre-fix: schedule_next_sample stops ticking near stream end and the
    // partially filled buffer was dropped without ever being uploaded.
    EXPECT_EQ(strategy.frames_uploaded(), 23u);
}

TEST_F(Shoggoth_flush, PartialBufferShipsAtMaxWaitNotAtTheNextTick) {
    auto local_student = student->clone();
    core::Shoggoth_config config;
    config.adaptive_sampling = false;
    config.fixed_rate = 0.5;         // ticks every 2 s
    config.upload_batch_frames = 64; // size never triggers
    config.upload_max_wait = Sim_duration{3.0}; // flush timer mid-stream
    config.warm_replay = false;
    core::Shoggoth_strategy strategy{*local_student, *teacher, config,
                                     models::Deployed_profile::yolov4_resnet18(),
                                     device::jetson_tx2(), device::v100()};
    Harness_config harness;
    harness.eval_stride = 60;
    (void)run_strategy(strategy, *stream, harness);
    // Every sampled frame is eventually uploaded: ticks at 2,4,...,22.
    EXPECT_EQ(strategy.frames_uploaded(), 11u);
}

// ---------------------------------------------------------------------------
// Heterogeneous-fleet construction.
// ---------------------------------------------------------------------------

TEST(FleetTestbed, HeterogeneousHardwareIsAssignedRoundRobin) {
    const std::vector<fleet::Edge_class> classes = fleet::default_edge_classes();
    ASSERT_EQ(classes.size(), 3u);
    fleet::Fleet fleet;
    fleet.specs.resize(5);
    fleet::assign_heterogeneous_hardware(fleet, classes);
    for (std::size_t i = 0; i < fleet.specs.size(); ++i) {
        ASSERT_TRUE(fleet.specs[i].hardware.has_value());
        const Device_hardware& hw = *fleet.specs[i].hardware;
        EXPECT_EQ(hw.edge_device.name, classes[i % 3].device.name);
        EXPECT_DOUBLE_EQ(hw.link.uplink_mbps, classes[i % 3].link.uplink_mbps);
    }
    // The straggler really is slower on both axes.
    EXPECT_LT(classes[2].device.effective_tflops, classes[0].device.effective_tflops);
    EXPECT_LT(classes[2].link.uplink_mbps, classes[0].link.uplink_mbps);
}

} // namespace
} // namespace shog::sim
