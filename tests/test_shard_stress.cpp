// TSan-targeted stress of sim::run_cluster_sharded's barrier protocol (the
// device-sharded companion to test_sweep_stress). The suite runs under
// every sanitizer flavor, but its reason to exist is SHOG_SANITIZE=thread:
// many tiny shards racing to the round barrier, repeated pool
// construction/join churn, and completion-chained cloud submits maximize
// interleavings on the Shard_pool mutex/condvars and the phase-owned device
// slots, so a missing happens-before edge shows up as a TSan report rather
// than as a once-a-month corrupted fleet artifact. Devices are scripted
// (no video decode, no models) — the contention is the point, not the work.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "determinism_harness.hpp"
#include "sim/harness.hpp"
#include "sim/shard.hpp"
#include "video/presets.hpp"

namespace shog::sim {
namespace {

/// Submits cloud work on a per-device cadence, with a completion-chained
/// follow-up submit (runs on the coordinator mid-delivery — the narrowest
/// path through the commit loop).
class Chatter_strategy final : public Strategy {
public:
    [[nodiscard]] std::string name() const override { return "chatter"; }
    void start(Edge_runtime& rt) override { tick(rt); }
    [[nodiscard]] std::vector<detect::Detection> infer(Edge_runtime&,
                                                       const video::Frame&) override {
        return {};
    }

private:
    void tick(Edge_runtime& rt) {
        const std::size_t id = rt.device_id();
        const Sim_duration service{0.05 + 0.013 * static_cast<double>(id % 7)};
        rt.cloud().submit(id, service, [&rt, id] {
            rt.cloud().submit(id, Sim_duration{0.02}, {});
        });
        rt.schedule(Sim_duration{0.25 + 0.005 * static_cast<double>(id % 3)},
                    [this, &rt] { tick(rt); });
    }
};

/// Pure timer bomb: no cloud traffic, throws at a per-device instant.
class Timer_bomb_strategy final : public Strategy {
public:
    [[nodiscard]] std::string name() const override { return "timer_bomb"; }
    void start(Edge_runtime& rt) override {
        const std::size_t id = rt.device_id();
        rt.schedule(Sim_duration{1.0 + 0.1 * static_cast<double>(id)}, [id] {
            throw std::runtime_error("device " + std::to_string(id) + " failed");
        });
    }
    [[nodiscard]] std::vector<detect::Detection> infer(Edge_runtime&,
                                                       const video::Frame&) override {
        return {};
    }
};

struct Scripted_fleet {
    std::vector<std::unique_ptr<Strategy>> strategies;
    std::vector<Device_spec> specs;
};

struct Shard_stress : public ::testing::Test {
    static void SetUpTestSuite() {
        preset = new video::Dataset_preset{video::ua_detrac_like(7, 6.0)};
        stream = new video::Video_stream{preset->stream, preset->world, preset->schedule};
    }
    static void TearDownTestSuite() {
        delete stream;
        delete preset;
    }

    /// `devices` chatterers; every device index d with d % 17 == 3 becomes a
    /// timer bomb instead when `bombs` is set.
    static Scripted_fleet make_fleet(std::size_t devices, bool bombs = false) {
        Scripted_fleet fleet;
        for (std::size_t i = 0; i < devices; ++i) {
            if (bombs && i % 17 == 3) {
                fleet.strategies.push_back(std::make_unique<Timer_bomb_strategy>());
            } else {
                fleet.strategies.push_back(std::make_unique<Chatter_strategy>());
            }
            fleet.specs.push_back(Device_spec{fleet.strategies.back().get(), stream, {}});
        }
        return fleet;
    }

    static video::Dataset_preset* preset;
    static video::Video_stream* stream;
};

video::Dataset_preset* Shard_stress::preset = nullptr;
video::Video_stream* Shard_stress::stream = nullptr;

TEST_F(Shard_stress, ManyTinyShardsMatchSequentialForEveryShardCount) {
    // 24 chattering devices split ever finer — down to one device per
    // shard, plus an over-asked count (64 clamps to 24) and hardware (0).
    constexpr std::size_t kDevices = 24;
    const Cluster_config config;
    const Scripted_fleet reference_fleet = make_fleet(kDevices);
    const std::string reference =
        shog::testing::serialize_cluster(run_cluster(reference_fleet.specs, config));
    ASSERT_NE(reference.find("device 23"), std::string::npos);
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                                     std::size_t{8}, std::size_t{24}, std::size_t{64},
                                     std::size_t{0}}) {
        const Scripted_fleet fleet = make_fleet(kDevices);
        EXPECT_EQ(reference, shog::testing::serialize_cluster(run_cluster_sharded(
                                 fleet.specs, config, Shard_options{shards})))
            << "shards = " << shards;
    }
}

TEST_F(Shard_stress, RepeatedPoolConstructionIsStable) {
    // Thread create/join churn: 50 sharded runs back to back, each fanning
    // 32 devices over 4 shards. Leaked workers, double joins or stale slot
    // reuse across constructions would trip TSan/ASan here.
    const Cluster_config config;
    const Scripted_fleet reference_fleet = make_fleet(32);
    const std::string reference =
        shog::testing::serialize_cluster(run_cluster(reference_fleet.specs, config));
    for (int round = 0; round < 50; ++round) {
        const Scripted_fleet fleet = make_fleet(32);
        EXPECT_EQ(reference, shog::testing::serialize_cluster(run_cluster_sharded(
                                 fleet.specs, config, Shard_options{4})))
            << "round " << round;
    }
}

TEST_F(Shard_stress, ThrowingDevicesDrainWorkersAndRethrowLowestShard) {
    // Devices 3 and 20 detonate (3 first, at t=1.3). Whatever the shard
    // count, the coordinator must join every worker and rethrow the
    // lowest-shard exception — always device 3's, since contiguous
    // partitioning keeps device order and a single worker executes its
    // shard in time order.
    const Cluster_config config;
    for (const std::size_t shards :
         {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{0}}) {
        const Scripted_fleet fleet = make_fleet(24, /*bombs=*/true);
        try {
            (void)run_cluster_sharded(fleet.specs, config, Shard_options{shards});
            FAIL() << "expected the device exception to propagate, shards=" << shards;
        } catch (const std::runtime_error& error) {
            EXPECT_STREQ(error.what(), "device 3 failed") << "shards=" << shards;
        }
    }
    // Clean run afterwards: nothing from the failed pools leaked.
    const Scripted_fleet fleet = make_fleet(8);
    const Cluster_result result = run_cluster_sharded(fleet.specs, config, Shard_options{8});
    EXPECT_EQ(result.devices.size(), 8u);
    EXPECT_GT(result.cloud_jobs, 0u);
}

} // namespace
} // namespace shog::sim
