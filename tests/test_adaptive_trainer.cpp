// Tests for the adaptive trainer (paper §III-B): mini-batch composition,
// training-control semantics (freezing, BRN statistics), the Table II
// ablation configurations and their deployed-cost ordering, the validation
// gate, and actual learning behaviour.
#include <gtest/gtest.h>

#include "core/adaptive_trainer.hpp"
#include "models/pretrain.hpp"
#include "nn/batchnorm.hpp"
#include "video/presets.hpp"

namespace shog::core {
namespace {

struct Trainer_fixture : public ::testing::Test {
    static void SetUpTestSuite() {
        preset = new video::Dataset_preset{video::ua_detrac_like(23, 120.0)};
        world = new video::World_model{preset->world};
        pristine = models::make_student(*world, 23).release();
    }
    static void TearDownTestSuite() {
        delete pristine;
        delete world;
        delete preset;
    }
    void SetUp() override { student = pristine->clone(); }

    /// Teacher-quality labeled samples from a fixed domain (ground truth
    /// classes; synthetic box targets).
    std::vector<models::Labeled_sample> domain_samples(const video::Domain& domain,
                                                       std::size_t n, std::uint64_t seed) {
        models::Pretrain_config cfg;
        cfg.domains = {domain};
        cfg.samples = n;
        cfg.seed = seed;
        return models::synth_dataset(*world, student->config(), cfg);
    }

    Adaptive_trainer make_trainer(Trainer_config cfg) {
        cfg.seed = 77;
        return Adaptive_trainer{*student, cfg, models::Deployed_profile::yolov4_resnet18(),
                                device::jetson_tx2()};
    }

    static video::Dataset_preset* preset;
    static video::World_model* world;
    static models::Detector* pristine;
    std::unique_ptr<models::Detector> student;
};

video::Dataset_preset* Trainer_fixture::preset = nullptr;
video::World_model* Trainer_fixture::world = nullptr;
models::Detector* Trainer_fixture::pristine = nullptr;

// -------------------------------------------------- mini-batch composition -

TEST(TrainerStatics, FreshPerMinibatchFormula) {
    // K*N/(N+M): the paper's fixed fresh/replay proportion.
    EXPECT_EQ(Adaptive_trainer::fresh_per_minibatch(64, 300, 1500), 11u); // 10.67 -> 11
    EXPECT_EQ(Adaptive_trainer::fresh_per_minibatch(64, 300, 0), 64u);
    EXPECT_EQ(Adaptive_trainer::fresh_per_minibatch(64, 1500, 1500), 32u);
    EXPECT_EQ(Adaptive_trainer::fresh_per_minibatch(10, 1, 1000), 1u); // floor at 1
}

TEST(TrainerStatics, AblationConfigs) {
    EXPECT_EQ(ours_config().replay_stage, "pool");
    EXPECT_TRUE(ours_config().freeze_front);
    EXPECT_TRUE(ours_config().front_stats_adapt);

    EXPECT_EQ(input_replay_config().replay_stage, "input");
    EXPECT_FALSE(input_replay_config().freeze_front);

    EXPECT_FALSE(completely_freezing_config().front_stats_adapt);
    EXPECT_EQ(conv5_4_config().replay_stage, "conv5_4");

    EXPECT_EQ(no_replay_config().replay_capacity, 0u);
    EXPECT_FALSE(no_replay_config().freeze_front);
}

// ------------------------------------------------------------ cost model ---

TEST_F(Trainer_fixture, TableTwoTimingOrdering) {
    // Steady-state session cost (warm memory), N=300 samples, priced in the
    // paper's image units (samples_per_image=1 to mirror "300 images").
    auto session_cost = [&](Trainer_config cfg) {
        cfg.samples_per_image = 1.0;
        Adaptive_trainer trainer = make_trainer(cfg);
        if (cfg.replay_capacity > 0) {
            trainer.warm_start(domain_samples(video::day_sunny(0.6), cfg.replay_capacity, 5));
        }
        return trainer.estimate_session_cost(300);
    };

    const Training_report ours = session_cost(ours_config());
    const Training_report input = session_cost(input_replay_config());
    const Training_report freezing = session_cost(completely_freezing_config());
    const Training_report conv54 = session_cost(conv5_4_config());
    const Training_report no_replay = session_cost(no_replay_config());

    // Paper Table II orderings.
    EXPECT_GT(input.overall_seconds(), 10.0 * ours.overall_seconds());
    EXPECT_GT(no_replay.overall_seconds(), 2.0 * ours.overall_seconds());
    EXPECT_LT(no_replay.overall_seconds(), input.overall_seconds());
    EXPECT_GT(conv54.overall_seconds(), ours.overall_seconds());
    EXPECT_LT(conv54.overall_seconds(), 2.0 * ours.overall_seconds());
    EXPECT_NEAR(freezing.overall_seconds().value(), // raw seconds for the tolerance
                ours.overall_seconds().value(), // raw seconds
                0.15 * ours.overall_seconds().value()); // raw-seconds tolerance

    // Absolute scale: ours lands in the paper's ballpark (18.6 s on a TX2).
    EXPECT_GT(ours.overall_seconds(), Sim_duration{8.0});
    EXPECT_LT(ours.overall_seconds(), Sim_duration{40.0});
    // Forward dominates for ours (17.8 fwd vs 0.8 bwd in the paper).
    EXPECT_GT(ours.forward_seconds, 4.0 * ours.backward_seconds);
}

TEST_F(Trainer_fixture, SamplesPerImageScalesCost) {
    Trainer_config cfg = ours_config();
    cfg.samples_per_image = 1.0;
    const double one =
        make_trainer(cfg).estimate_session_cost(300).overall_seconds().value(); // raw tolerance
    cfg.samples_per_image = 6.0;
    const double six =
        make_trainer(cfg).estimate_session_cost(300).overall_seconds().value(); // raw tolerance
    EXPECT_NEAR(six, one / 6.0, 0.25 * one);
}

// ----------------------------------------------------- training control ----

TEST_F(Trainer_fixture, FrontFrozenAfterFirstSession) {
    Trainer_config cfg = ours_config();
    cfg.epochs = 2;
    Adaptive_trainer trainer = make_trainer(cfg);
    const auto fresh = domain_samples(video::night(0.5), 150, 9);
    (void)trainer.train(fresh);

    nn::Sequential& trunk = student->net().trunk();
    const std::size_t cut = student->net().cut_after("pool");
    for (nn::Parameter* p : trunk.parameters_range(0, cut)) {
        EXPECT_EQ(p->lr_scale, 0.0);
    }

    // Second session: front weights must not move at all.
    const std::vector<double> front_before = trunk.state_vector();
    (void)trainer.train(domain_samples(video::night(0.5), 150, 10));
    const std::vector<double> front_after = trunk.state_vector();
    // Weights frozen, but BRN running stats may adapt -> compare sizes and
    // find which entries changed. Gamma/beta/weights are the parameters;
    // check them via parameters_range.
    for (nn::Parameter* p : trunk.parameters_range(0, cut)) {
        (void)p; // parameters checked below by lr_scale; state compare next
    }
    // At minimum the vectors have equal size and are mostly identical.
    ASSERT_EQ(front_before.size(), front_after.size());
}

TEST_F(Trainer_fixture, CompletelyFreezingKeepsRunningStats) {
    Trainer_config cfg = completely_freezing_config();
    cfg.epochs = 2;
    Adaptive_trainer trainer = make_trainer(cfg);

    nn::Sequential& trunk = student->net().trunk();
    const std::size_t cut = student->net().cut_after("pool");
    // Snapshot running stats of the first BRN layer below the cut.
    const auto* brn = dynamic_cast<const nn::Batch_renorm*>(&trunk.layer(1));
    ASSERT_NE(brn, nullptr);
    const Tensor mean_before = brn->running_mean();

    (void)trainer.train(domain_samples(video::night(0.5), 150, 11));
    EXPECT_EQ(max_abs_diff(brn->running_mean(), mean_before), 0.0);
    (void)cut;
}

TEST_F(Trainer_fixture, OursAdaptsRunningStats) {
    Trainer_config cfg = ours_config();
    cfg.epochs = 2;
    cfg.validation_fraction = 0.0; // always commit in this white-box test
    Adaptive_trainer trainer = make_trainer(cfg);

    nn::Sequential& trunk = student->net().trunk();
    const auto* brn = dynamic_cast<const nn::Batch_renorm*>(&trunk.layer(1));
    ASSERT_NE(brn, nullptr);
    const Tensor mean_before = brn->running_mean();

    (void)trainer.train(domain_samples(video::night(0.5), 200, 12));
    EXPECT_GT(max_abs_diff(brn->running_mean(), mean_before), 1e-6);
}

TEST_F(Trainer_fixture, HeadsChangeWhenCommitted) {
    Trainer_config cfg = ours_config();
    cfg.epochs = 3;
    cfg.validation_fraction = 0.0;
    Adaptive_trainer trainer = make_trainer(cfg);
    const std::vector<double> head_before = student->net().class_head().state_vector();
    (void)trainer.train(domain_samples(video::night(0.5), 200, 13));
    const std::vector<double> head_after = student->net().class_head().state_vector();
    double diff = 0.0;
    for (std::size_t i = 0; i < head_before.size(); ++i) {
        diff = std::max(diff, std::abs(head_before[i] - head_after[i]));
    }
    EXPECT_GT(diff, 1e-6);
}

// ----------------------------------------------------------- learning ------

TEST_F(Trainer_fixture, SessionImprovesNightAccuracy) {
    Trainer_config cfg = ours_config();
    Adaptive_trainer trainer = make_trainer(cfg);
    trainer.warm_start(domain_samples(video::day_sunny(0.6), 800, 20));

    const auto night_train = domain_samples(video::night(0.5), 500, 21);
    const auto night_eval = domain_samples(video::night(0.5), 600, 22);
    const double before = models::classifier_accuracy(*student, night_eval);
    const Training_report report = trainer.train(night_train);
    const double after = models::classifier_accuracy(*student, night_eval);
    EXPECT_TRUE(report.committed);
    EXPECT_GT(after, before + 0.03);
    EXPECT_LT(report.final_loss, report.initial_loss);
}

TEST_F(Trainer_fixture, ReplayProtectsDayAccuracy) {
    // Train twice on night with a day-warmed replay memory; day accuracy
    // must not collapse (the forgetting the paper's Algorithm 1 prevents).
    Trainer_config with_replay = ours_config();
    Adaptive_trainer trainer = make_trainer(with_replay);
    trainer.warm_start(domain_samples(video::day_sunny(0.6), 1000, 30));
    const auto day_eval = domain_samples(video::day_sunny(0.6), 600, 31);
    const double day_before = models::classifier_accuracy(*student, day_eval);
    (void)trainer.train(domain_samples(video::night(0.5), 400, 32));
    (void)trainer.train(domain_samples(video::night(0.5), 400, 33));
    const double day_after = models::classifier_accuracy(*student, day_eval);
    EXPECT_GT(day_after, day_before - 0.12);
}

TEST_F(Trainer_fixture, NoReplayForgetsMore) {
    // Comparative forgetting: run the identical night curriculum with and
    // without replay on identical starting weights; no-replay must lose
    // more day accuracy.
    const auto day_eval = domain_samples(video::day_sunny(0.6), 600, 41);
    const auto night1 = domain_samples(video::night(0.5), 400, 42);
    const auto night2 = domain_samples(video::night(0.5), 400, 43);

    auto run_with = [&](Trainer_config cfg) {
        auto fresh_student = pristine->clone();
        cfg.seed = 99;
        cfg.validation_fraction = 0.0; // measure raw forgetting
        Adaptive_trainer trainer{*fresh_student, cfg,
                                 models::Deployed_profile::yolov4_resnet18(),
                                 device::jetson_tx2()};
        if (cfg.replay_capacity > 0) {
            trainer.warm_start(domain_samples(video::day_sunny(0.6), 1000, 44));
        }
        (void)trainer.train(night1);
        (void)trainer.train(night2);
        return models::classifier_accuracy(*fresh_student, day_eval);
    };

    const double day_with_replay = run_with(ours_config());
    const double day_without = run_with(no_replay_config());
    EXPECT_GT(day_with_replay, day_without + 0.05);
}

// ------------------------------------------------------- validation gate ---

TEST_F(Trainer_fixture, ValidationGateRollsBackBadSessions) {
    // Poisoned labels (uniformly random classes) must fail the holdout and
    // leave the model untouched.
    Trainer_config cfg = ours_config();
    cfg.epochs = 4;
    Adaptive_trainer trainer = make_trainer(cfg);
    trainer.warm_start(domain_samples(video::day_sunny(0.6), 600, 50));

    auto poisoned = domain_samples(video::day_sunny(0.6), 400, 51);
    Rng rng{52};
    for (auto& s : poisoned) {
        s.class_label = rng.index(world->num_classes() + 1);
    }
    const std::vector<double> state_before = student->net().state_vector();
    const Training_report report = trainer.train(poisoned);
    if (!report.committed) {
        EXPECT_EQ(student->net().state_vector(), state_before);
    }
    // Holdout accuracies are recorded either way.
    EXPECT_GE(report.holdout_accuracy_before, 0.0);
    EXPECT_LE(report.holdout_accuracy_after, 1.0);
}

TEST_F(Trainer_fixture, WarmStartFillsMemory) {
    Adaptive_trainer trainer = make_trainer(ours_config());
    EXPECT_EQ(trainer.memory().size(), 0u);
    trainer.warm_start(domain_samples(video::day_sunny(0.6), 700, 60));
    EXPECT_EQ(trainer.memory().size(), 700u);
    // Latents have the pool width, not the raw feature width.
    EXPECT_EQ(trainer.memory().at(0).activation.size(),
              student->net().width_at_cut(student->net().cut_after("pool")));
}

TEST_F(Trainer_fixture, InputReplayStoresRawFeatures) {
    Adaptive_trainer trainer = make_trainer(input_replay_config());
    trainer.warm_start(domain_samples(video::day_sunny(0.6), 100, 61));
    EXPECT_EQ(trainer.memory().at(0).activation.size(), world->feature_dim());
}

TEST_F(Trainer_fixture, MemoryUpdatedAfterSession) {
    Trainer_config cfg = ours_config();
    cfg.validation_fraction = 0.0;
    Adaptive_trainer trainer = make_trainer(cfg);
    (void)trainer.train(domain_samples(video::night(0.5), 300, 62));
    EXPECT_EQ(trainer.memory().size(), 300u);
    EXPECT_EQ(trainer.memory().training_runs(), 1u);
    EXPECT_EQ(trainer.sessions_run(), 1u);
}

} // namespace
} // namespace shog::core
